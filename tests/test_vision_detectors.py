"""Face / text / object detector and recognizer tests on synthetic data."""

import numpy as np
import pytest

from repro.datasets import load_dataset, load_image
from repro.vision import (
    EigenfaceRecognizer,
    detect_faces,
    detect_text_regions,
    detection_precision_recall,
    propose_objects,
    read_text,
)
from repro.vision.haar import Detection, non_maximum_suppression
from repro.util.errors import ReproError
from repro.util.rect import Rect


class TestFaceDetector:
    def test_detects_most_caltech_faces(self, caltech_images):
        tp = gt = 0
        for image in caltech_images:
            boxes = detect_faces(image.array)
            _, _, t = detection_precision_recall(boxes, image.faces)
            tp += t
            gt += len(image.faces)
        assert tp / gt >= 0.6

    def test_detects_feret_mugshots(self, feret_images):
        subset = feret_images[:8]
        tp = sum(
            detection_precision_recall(
                detect_faces(im.array), im.faces
            )[2]
            for im in subset
        )
        assert tp / len(subset) >= 0.6

    def test_few_detections_on_landscapes(self):
        images = load_dataset("inria", n_images=3)
        total = sum(len(detect_faces(im.array)) for im in images)
        assert total <= 2 * len(images)

    def test_max_detections_cap(self, caltech_images):
        boxes = detect_faces(caltech_images[0].array, max_detections=1)
        assert len(boxes) <= 1

    def test_return_scores_variant(self, caltech_images):
        dets = detect_faces(caltech_images[0].array, return_scores=True)
        assert all(isinstance(d, Detection) for d in dets)
        scores = [d.score for d in dets]
        assert scores == sorted(scores, reverse=True)

    def test_grayscale_input_does_not_crash(self, caltech_images):
        gray = caltech_images[0].array.mean(axis=2)
        detect_faces(gray)  # skin tests become vacuous; must not raise

    def test_nms_merges_same_face_windows(self):
        dets = [
            Detection(Rect(10, 10, 24, 18), 3.0),
            Detection(Rect(11, 10, 24, 18), 2.9),
            Detection(Rect(10, 11, 24, 18), 2.8),
            Detection(Rect(9, 10, 26, 20), 2.7),
            Detection(Rect(12, 12, 24, 18), 2.5),
        ]
        merged = non_maximum_suppression(dets, min_neighbors=3)
        assert len(merged) == 1

    def test_nms_min_neighbors_drops_singletons(self):
        dets = [Detection(Rect(10, 10, 24, 18), 5.0)]
        assert non_maximum_suppression(dets, min_neighbors=2) == []


class TestTextDetector:
    def test_finds_document_lines(self, pascal_document):
        boxes = detect_text_regions(pascal_document.array)
        _, recall, _ = detection_precision_recall(
            boxes, pascal_document.texts
        )
        assert recall == 1.0

    def test_finds_license_plate(self, pascal_image):
        boxes = detect_text_regions(pascal_image.array)
        _, recall, _ = detection_precision_recall(
            boxes, pascal_image.texts, iou_threshold=0.2
        )
        assert recall == 1.0

    def test_no_text_on_flat_image(self):
        flat = np.full((60, 80, 3), 128, dtype=np.uint8)
        assert detect_text_regions(flat) == []

    def test_boxes_have_text_geometry(self, pascal_document):
        for box in detect_text_regions(pascal_document.array):
            assert box.w / box.h >= 1.8


class TestOcrReader:
    def test_reads_ssn_line(self, pascal_document):
        ssn_boxes = [
            b
            for b in pascal_document.texts
            if read_text(pascal_document.array, b).startswith("SSN")
        ]
        assert ssn_boxes, "no SSN line found by OCR"
        text = read_text(pascal_document.array, ssn_boxes[0])
        digits = [c for c in text if c.isdigit()]
        assert len(digits) == 9

    def test_reads_synthetic_hello_world(self):
        from repro.datasets import font, shapes

        img = shapes.canvas(40, 200, (250, 250, 250))
        font.render_text(img, "HELLO WORLD!", 10, 8, (10, 10, 10), scale=2)
        text = read_text(shapes.to_uint8(img))
        assert "HELLO" in text and "WORLD" in text

    def test_empty_region_reads_empty(self):
        flat = np.full((20, 60), 200, dtype=np.uint8)
        assert read_text(flat) == ""


class TestObjectness:
    def test_proposes_known_objects(self):
        tp = gt = 0
        for index in (0, 1, 4, 5):
            image = load_image("pascal", index)
            if not image.objects:
                continue
            props = propose_objects(image.array, top_n=5)
            _, _, t = detection_precision_recall(
                props, image.objects, iou_threshold=0.25
            )
            tp += t
            gt += len(image.objects)
        assert gt > 0 and tp / gt >= 0.5

    def test_top_n_respected(self, pascal_image):
        assert len(propose_objects(pascal_image.array, top_n=3)) <= 3

    def test_flat_image_no_proposals(self):
        flat = np.full((60, 80, 3), 99, dtype=np.uint8)
        assert propose_objects(flat) == []


class TestEigenfaces:
    def _split(self, feret_images):
        gallery = feret_images[:30]
        probes = feret_images[30:]
        return gallery, probes

    def test_recognizes_identities_above_chance(self, feret_images):
        gallery, probes = self._split(feret_images)
        rec = EigenfaceRecognizer().fit(
            [g.array for g in gallery], [g.identity for g in gallery]
        )
        curve = rec.cumulative_match_curve(
            [p.array for p in probes], [p.identity for p in probes], 10
        )
        n_identities = len({g.identity for g in gallery})
        chance_at_1 = 1.0 / n_identities
        assert curve[0] > 3 * chance_at_1
        assert curve[-1] >= curve[0]  # CMC is monotone

    def test_rank_of_true_identity(self, feret_images):
        gallery, probes = self._split(feret_images)
        rec = EigenfaceRecognizer().fit(
            [g.array for g in gallery], [g.identity for g in gallery]
        )
        rank = rec.rank_of_true_identity(
            gallery[0].array, gallery[0].identity
        )
        assert rank == 1  # enrolled image must match itself first

    def test_ranked_identities_unique(self, feret_images):
        gallery, _ = self._split(feret_images)
        rec = EigenfaceRecognizer().fit(
            [g.array for g in gallery], [g.identity for g in gallery]
        )
        ranked = rec.rank_identities(gallery[3].array)
        assert len(ranked) == len(set(ranked))

    def test_unfitted_rejected(self, feret_images):
        with pytest.raises(ReproError):
            EigenfaceRecognizer().rank_identities(feret_images[0].array)

    def test_label_count_mismatch_rejected(self, feret_images):
        with pytest.raises(ReproError):
            EigenfaceRecognizer().fit(
                [feret_images[0].array], [0, 1]
            )
