"""Lossless DCT-domain transformation tests (the jpegtran operations)."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.lossless_recovery import (
    apply_lossless,
    invert_lossless_op,
    reconstruct_lossless,
)
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.roi import RegionOfInterest
from repro.core.system import SharingSession
from repro.jpeg import lossless
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import TransformError
from repro.util.rect import Rect


@pytest.fixture(scope="module")
def aligned_image():
    rng = np.random.default_rng(21)
    arr = rng.integers(0, 256, (48, 64, 3), dtype=np.uint8)
    return CoefficientImage.from_array(arr, quality=75)


class TestLosslessOps:
    def test_transpose_matches_pixel_domain(self, aligned_image):
        got = lossless.transpose(aligned_image).to_float_array()
        want = np.swapaxes(aligned_image.to_float_array(), 0, 1)
        assert np.allclose(got, want, atol=1e-9)

    def test_flips_match_pixel_domain(self, aligned_image):
        ref = aligned_image.to_float_array()
        assert np.allclose(
            lossless.flip_horizontal(aligned_image).to_float_array(),
            ref[:, ::-1],
            atol=1e-9,
        )
        assert np.allclose(
            lossless.flip_vertical(aligned_image).to_float_array(),
            ref[::-1],
            atol=1e-9,
        )

    @pytest.mark.parametrize("turns", [0, 1, 2, 3])
    def test_rotations_match_numpy(self, aligned_image, turns):
        got = lossless.rotate90(aligned_image, turns).to_float_array()
        want = np.rot90(aligned_image.to_float_array(), turns)
        assert np.allclose(got, want, atol=1e-9)

    def test_rotation_roundtrip_is_exact_integers(self, aligned_image):
        back = lossless.rotate90(lossless.rotate90(aligned_image, 1), 3)
        assert back.coefficients_equal(aligned_image)

    def test_double_flip_identity(self, aligned_image):
        back = lossless.flip_horizontal(
            lossless.flip_horizontal(aligned_image)
        )
        assert back.coefficients_equal(aligned_image)

    def test_crop_matches_pixel_domain(self, aligned_image):
        got = lossless.crop(aligned_image, Rect(8, 16, 24, 32))
        want = aligned_image.to_float_array()[8:32, 16:48]
        assert np.allclose(got.to_float_array(), want, atol=1e-9)

    def test_quant_tables_transpose_with_geometry(self, aligned_image):
        rotated = lossless.rotate90(aligned_image, 1)
        assert np.array_equal(
            rotated.quant_tables[0], aligned_image.quant_tables[0].T
        )

    def test_unaligned_dimensions_rejected(self, unaligned_rgb):
        image = CoefficientImage.from_array(unaligned_rgb)
        with pytest.raises(TransformError):
            lossless.rotate90(image)
        with pytest.raises(TransformError):
            lossless.flip_horizontal(image)

    def test_unaligned_crop_rejected(self, aligned_image):
        with pytest.raises(TransformError):
            lossless.crop(aligned_image, Rect(3, 0, 8, 8))

    def test_crop_out_of_grid_rejected(self, aligned_image):
        with pytest.raises(TransformError):
            lossless.crop(aligned_image, Rect(0, 0, 8, 8 * 100))


class TestOpRecords:
    @pytest.mark.parametrize(
        "op",
        [
            {"op": "rotate90", "turns": 1},
            {"op": "rotate90", "turns": 3},
            {"op": "flip_h"},
            {"op": "flip_v"},
            {"op": "transpose"},
        ],
        ids=lambda o: f"{o['op']}{o.get('turns', '')}",
    )
    def test_invert_then_apply_is_identity(self, aligned_image, op):
        inverse = invert_lossless_op(op)
        back = apply_lossless(
            apply_lossless(aligned_image, op), inverse
        )
        assert back.coefficients_equal(aligned_image)

    def test_crop_not_invertible(self):
        assert invert_lossless_op(
            {"op": "crop", "y": 0, "x": 0, "h": 8, "w": 8}
        ) is None

    def test_unknown_op_rejected(self, aligned_image):
        with pytest.raises(TransformError):
            apply_lossless(aligned_image, {"op": "teleport"})


class TestLosslessRecovery:
    def _protect(self, image, scheme="puppies-c", rect=Rect(8, 8, 24, 32)):
        roi = RegionOfInterest("r0", rect, scheme=scheme)
        key = generate_private_key(roi.matrix_id, "lossless-owner")
        perturbed, public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        return perturbed, public, {roi.matrix_id: key}

    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize(
        "op",
        [
            {"op": "rotate90", "turns": 1},
            {"op": "rotate90", "turns": 2},
            {"op": "flip_h"},
            {"op": "transpose"},
        ],
        ids=lambda o: f"{o['op']}{o.get('turns', '')}",
    )
    def test_bit_exact_recovery_invertible_ops(
        self, aligned_image, scheme, op
    ):
        perturbed, public, keys = self._protect(aligned_image, scheme)
        transformed = apply_lossless(perturbed, op)
        recovered = reconstruct_lossless(transformed, op, public, keys)
        truth = apply_lossless(aligned_image, op)
        assert recovered.coefficients_equal(truth)

    @pytest.mark.parametrize("scheme", ["puppies-b", "puppies-c", "puppies-z"])
    def test_bit_exact_recovery_after_crop(self, aligned_image, scheme):
        # Crop window overlaps the protected region partially.
        perturbed, public, keys = self._protect(
            aligned_image, scheme, rect=Rect(8, 8, 24, 32)
        )
        op = {"op": "crop", "y": 16, "x": 24, "h": 24, "w": 32}
        transformed = apply_lossless(perturbed, op)
        recovered = reconstruct_lossless(transformed, op, public, keys)
        truth = apply_lossless(aligned_image, op)
        assert recovered.coefficients_equal(truth)

    def test_crop_outside_region_leaves_image_unchanged(self, aligned_image):
        perturbed, public, keys = self._protect(
            aligned_image, rect=Rect(0, 0, 8, 8)
        )
        op = {"op": "crop", "y": 24, "x": 32, "h": 16, "w": 16}
        transformed = apply_lossless(perturbed, op)
        recovered = reconstruct_lossless(transformed, op, public, keys)
        assert recovered.coefficients_equal(
            apply_lossless(aligned_image, op)
        )

    def test_missing_key_stays_perturbed(self, aligned_image):
        perturbed, public, _keys = self._protect(aligned_image)
        op = {"op": "flip_h"}
        transformed = apply_lossless(perturbed, op)
        recovered = reconstruct_lossless(transformed, op, public, {})
        truth = apply_lossless(aligned_image, op)
        assert not recovered.coefficients_equal(truth)

    def test_end_to_end_through_psp(self):
        rng = np.random.default_rng(33)
        photo = rng.integers(0, 256, (64, 96, 3), dtype=np.uint8)
        session = SharingSession("owner")
        roi = RegionOfInterest("r", Rect(16, 16, 32, 48))
        session.share("img", photo, [roi], grants={"bob": ["matrix-r"]})
        bob = session.receivers["bob"]
        op = {"op": "rotate90", "turns": 1}
        recovered = bob.fetch_lossless(session.psp, "img", op)
        reference = CoefficientImage.from_array(photo, quality=75)
        truth = apply_lossless(reference, op)
        assert recovered.coefficients_equal(truth)
        # The public record returned with the download mentions the
        # operation; the stored record stays pristine.
        _transformed, public = session.psp.download_lossless("img", op)
        assert public.transform_params == op
        assert session.psp.public_data("img").transform_params is None
