"""Scenario-2 (shadow ROI) reconstruction tests — Section IV-C."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.core.shadow import (
    build_shadow_planes,
    reconstruct_recompressed,
    reconstruct_transformed,
)
from repro.transforms import (
    Crop,
    Filter,
    Overlay,
    Pipeline,
    Recompress,
    Rotate,
    Rotate90,
    Scale,
    gaussian_kernel,
)
from repro.util.rect import Rect

MEDIUM = PrivacySettings.for_level(PrivacyLevel.MEDIUM)


def _protect(image, scheme="puppies-c", rect=Rect(16, 16, 24, 32)):
    roi = RegionOfInterest("r0", rect, MEDIUM, scheme=scheme)
    key = generate_private_key(roi.matrix_id, "alice")
    perturbed, public = perturb_regions(
        image, [roi], {roi.matrix_id: key}
    )
    return perturbed, public, {roi.matrix_id: key}


class TestShadowIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_perturbed_equals_original_plus_shadow(
        self, noise_image, scheme
    ):
        perturbed, public, keys = _protect(noise_image, scheme)
        shadow = build_shadow_planes(public, keys)
        original = noise_image.to_sample_planes()
        for p, o, s in zip(
            perturbed.to_sample_planes(), original, shadow
        ):
            assert np.allclose(p, o + s, atol=1e-8)

    def test_shadow_zero_outside_roi(self, noise_image):
        _perturbed, public, keys = _protect(
            noise_image, rect=Rect(16, 16, 16, 16)
        )
        shadow = build_shadow_planes(public, keys)
        for plane in shadow:
            assert np.allclose(plane[:16, :], 0.0, atol=1e-9)
            assert np.allclose(plane[40:, :], 0.0, atol=1e-9)
            assert np.abs(plane[16:32, 16:32]).max() > 1.0

    def test_missing_key_produces_empty_shadow(self, noise_image):
        _perturbed, public, _keys = _protect(noise_image)
        shadow = build_shadow_planes(public, {})
        for plane in shadow:
            assert np.allclose(plane, 0.0)


TRANSFORMS = [
    Scale(48, 64),
    Scale(120, 160),
    Scale(30, 40, method="nearest"),
    Crop(8, 8, 40, 56),
    Crop(12, 20, 30, 30),  # non-block-aligned crop is fine in scenario 2
    Rotate90(1),
    Rotate90(2),
    Rotate90(3),
    Rotate(23.0),
    Filter(gaussian_kernel(1.3)),
    Pipeline([Scale(48, 64), Rotate90(1)]),
]


class TestTransformedRecovery:
    @pytest.mark.parametrize(
        "transform", TRANSFORMS, ids=lambda t: f"{t.name}{id(t) % 89}"
    )
    @pytest.mark.parametrize("scheme", ["puppies-c", "puppies-z"])
    def test_exact_recovery_after_transform(
        self, noise_image, transform, scheme
    ):
        perturbed, public, keys = _protect(noise_image, scheme)
        transformed = transform.apply(perturbed.to_sample_planes())
        recovered = reconstruct_transformed(
            transformed, transform, public, keys
        )
        truth = transform.apply(noise_image.to_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-7)

    def test_overlay_recovery(self, noise_image, rng):
        perturbed, public, keys = _protect(noise_image)
        planes = perturbed.to_sample_planes()
        overlay = Overlay(
            [rng.uniform(0, 255, p.shape) for p in planes], alpha=0.25
        )
        transformed = overlay.apply(planes)
        recovered = reconstruct_transformed(
            transformed, overlay, public, keys
        )
        truth = overlay.apply(noise_image.to_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-7)

    def test_recovery_without_key_stays_scrambled(self, noise_image):
        perturbed, public, _keys = _protect(noise_image)
        transform = Scale(48, 64)
        transformed = transform.apply(perturbed.to_sample_planes())
        recovered = reconstruct_transformed(
            transformed, transform, public, {}
        )
        truth = transform.apply(noise_image.to_sample_planes())
        err = max(np.abs(r - t).max() for r, t in zip(recovered, truth))
        assert err > 50.0

    def test_partial_keys_recover_only_their_region(self, noise_image):
        rois = [
            RegionOfInterest("a", Rect(0, 0, 16, 16), MEDIUM),
            RegionOfInterest("b", Rect(32, 32, 16, 24), MEDIUM),
        ]
        keys = {
            roi.matrix_id: generate_private_key(roi.matrix_id, "alice")
            for roi in rois
        }
        perturbed, public = perturb_regions(noise_image, rois, keys)
        transform = Rotate90(2)
        transformed = transform.apply(perturbed.to_sample_planes())
        only_a = {rois[0].matrix_id: keys[rois[0].matrix_id]}
        recovered = reconstruct_transformed(
            transformed, transform, public, only_a
        )
        truth = transform.apply(noise_image.to_sample_planes())
        # 180-degree rotation maps region a (top-left) to bottom-right.
        h, w = truth[0].shape
        a_region = (slice(h - 16, h), slice(w - 16, w))
        b_region = (slice(h - 32 - 16, h - 32), slice(w - 32 - 24, w - 32))
        assert np.allclose(
            recovered[0][a_region], truth[0][a_region], atol=1e-7
        )
        assert np.abs(recovered[0][b_region] - truth[0][b_region]).max() > 50

    def test_plane_count_mismatch_rejected(self, noise_image):
        from repro.util.errors import ReproError

        perturbed, public, keys = _protect(noise_image)
        transform = Scale(48, 64)
        transformed = transform.apply(perturbed.to_sample_planes())
        with pytest.raises(ReproError):
            reconstruct_transformed(
                transformed[:1], transform, public, keys
            )


class TestRecompressionRecovery:
    @pytest.mark.parametrize("quality", [30, 50, 70])
    def test_recovery_within_one_step(self, noise_image, quality):
        perturbed, public, keys = _protect(noise_image)
        recompress = Recompress(quality)
        recompressed_perturbed = recompress.apply_to_image(perturbed)
        recovered = reconstruct_recompressed(
            recompressed_perturbed, recompress, public, keys
        )
        truth = recompress.apply_to_image(noise_image)
        for r, t in zip(recovered.channels, truth.channels):
            assert np.abs(r.astype(int) - t.astype(int)).max() <= 1

    def test_recovery_visually_close(self, smooth_image):
        from repro.vision.metrics import psnr

        perturbed, public, keys = _protect(
            smooth_image, rect=Rect(0, 0, 40, 48)
        )
        recompress = Recompress(40)
        recompressed = recompress.apply_to_image(perturbed)
        recovered = reconstruct_recompressed(
            recompressed, recompress, public, keys
        )
        truth = recompress.apply_to_image(smooth_image)
        assert psnr(recovered.to_float_array(), truth.to_float_array()) > 35
