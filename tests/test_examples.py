"""Every example script must run end to end (they are the quickstart docs).

Each example writes its outputs under ``examples/out/...`` relative to the
working directory, so the tests run them from a temp directory.
"""

import os
import runpy

import pytest

EXAMPLES = [
    "quickstart.py",
    "personalized_sharing.py",
    "psp_transformations.py",
    "document_redaction.py",
    "attack_gallery.py",
]

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_and_writes_outputs(script, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    runpy.run_path(path, run_name="__main__")
    out_root = tmp_path / "examples" / "out"
    assert out_root.exists()
    written = list(out_root.rglob("*.ppm"))
    assert written, f"{script} wrote no images"
