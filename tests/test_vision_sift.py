"""SIFT extraction and matching tests."""

import numpy as np
import pytest

from repro.datasets import load_image
from repro.vision.sift import (
    SiftFeature,
    extract_sift,
    match_descriptors,
)


@pytest.fixture(scope="module")
def landscape():
    return load_image("inria", 0).array


@pytest.fixture(scope="module")
def landscape_features(landscape):
    return extract_sift(landscape)


class TestExtraction:
    def test_finds_features_on_textured_image(self, landscape_features):
        assert len(landscape_features) >= 20

    def test_descriptor_shape_and_normalization(self, landscape_features):
        for feature in landscape_features[:20]:
            assert feature.descriptor.shape == (128,)
            norm = np.linalg.norm(feature.descriptor)
            assert norm == pytest.approx(1.0, abs=1e-6) or norm == 0.0
            assert feature.descriptor.min() >= 0.0
            # Clipped at 0.2 *before* the final renormalization, so no
            # single bin can dominate the descriptor.
            assert feature.descriptor.max() <= 0.5 or norm == 0.0

    def test_positions_inside_image(self, landscape, landscape_features):
        h, w = landscape.shape[:2]
        for feature in landscape_features:
            assert 0 <= feature.y < h
            assert 0 <= feature.x < w

    def test_flat_image_yields_nothing(self):
        flat = np.full((64, 64), 128, dtype=np.uint8)
        assert extract_sift(flat) == []

    def test_contrast_threshold_controls_count(self, landscape):
        strict = extract_sift(landscape, contrast_threshold=0.05)
        loose = extract_sift(landscape, contrast_threshold=0.01)
        assert len(loose) >= len(strict)

    def test_max_features_cap(self, landscape):
        assert len(extract_sift(landscape, max_features=5)) <= 5


class TestMatching:
    def test_self_matching_is_total(self, landscape_features):
        matches = match_descriptors(landscape_features, landscape_features)
        assert len(matches) == len(landscape_features)
        assert all(a == b for a, b in matches)

    def test_empty_inputs(self, landscape_features):
        assert match_descriptors([], landscape_features) == []
        assert match_descriptors(landscape_features, []) == []

    def test_unrelated_content_matches_less_than_self(
        self, landscape_features
    ):
        # A document scan shares almost no structure with a landscape;
        # same-generator landscapes legitimately share some (sun, ridges).
        document = load_image("pascal", 3).array
        doc_features = extract_sift(document)
        cross = match_descriptors(landscape_features, doc_features)
        self_matches = match_descriptors(
            landscape_features, landscape_features
        )
        assert len(cross) < 0.5 * len(self_matches)

    def test_ratio_tightening_reduces_matches(self, landscape_features):
        other = extract_sift(load_image("inria", 5).array)
        loose = match_descriptors(landscape_features, other, ratio=0.95)
        tight = match_descriptors(landscape_features, other, ratio=0.6)
        assert len(tight) <= len(loose)
