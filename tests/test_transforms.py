"""PSP-side transformation tests, including the affinity property that
shadow reconstruction depends on."""

import numpy as np
import pytest

from repro.transforms import (
    Crop,
    Filter,
    Overlay,
    Pipeline,
    Recompress,
    Rotate90,
    Rotate,
    Scale,
    box_kernel,
    gaussian_kernel,
    sharpen_kernel,
    transform_from_params,
)
from repro.util.errors import TransformError


def _planes(rng, shape=(24, 32), n=2):
    return [rng.uniform(-10, 265, shape) for _ in range(n)]


ALL_TRANSFORMS = [
    Scale(12, 20),
    Scale(48, 64, method="nearest"),
    Crop(8, 8, 8, 16),
    Rotate90(1),
    Rotate90(2),
    Rotate(17.5),
    Filter(gaussian_kernel(1.0)),
    Filter(sharpen_kernel()),
]


class TestAffinity:
    """apply(a + b) - apply(b) == apply_linear(a): the shadow identity."""

    @pytest.mark.parametrize(
        "transform", ALL_TRANSFORMS, ids=lambda t: f"{t.name}-{id(t) % 97}"
    )
    def test_linear_part_identity(self, rng, transform):
        a = _planes(rng)
        b = _planes(rng)
        lhs = transform.apply([x + y for x, y in zip(a, b)])
        rhs_b = transform.apply(b)
        rhs_a = transform.apply_linear(a)
        for l, rb, ra in zip(lhs, rhs_b, rhs_a):
            assert np.allclose(l, rb + ra, atol=1e-9)

    def test_overlay_affinity(self, rng):
        overlay = Overlay(_planes(rng), alpha=0.3)
        a = _planes(rng)
        b = _planes(rng)
        lhs = overlay.apply([x + y for x, y in zip(a, b)])
        rhs = [
            ob + oa
            for ob, oa in zip(overlay.apply(b), overlay.apply_linear(a))
        ]
        for l, r in zip(lhs, rhs):
            assert np.allclose(l, r, atol=1e-9)

    def test_pipeline_affinity(self, rng):
        pipe = Pipeline([Scale(16, 24), Filter(box_kernel(3)), Rotate90(1)])
        a = _planes(rng)
        b = _planes(rng)
        lhs = pipe.apply([x + y for x, y in zip(a, b)])
        rhs_b = pipe.apply(b)
        rhs_a = pipe.apply_linear(a)
        for l, rb, ra in zip(lhs, rhs_b, rhs_a):
            assert np.allclose(l, rb + ra, atol=1e-9)


class TestScale:
    def test_identity_scale_is_exact(self, rng):
        plane = rng.uniform(0, 255, (16, 16))
        out = Scale(16, 16).apply([plane])[0]
        assert np.allclose(out, plane, atol=1e-12)

    def test_output_shape(self, rng):
        out = Scale(10, 25).apply([rng.uniform(0, 1, (20, 50))])[0]
        assert out.shape == (10, 25)
        assert Scale(10, 25).output_shape((20, 50)) == (10, 25)

    def test_downscale_averages(self):
        plane = np.zeros((4, 4))
        plane[:, 2:] = 100.0
        out = Scale(2, 2).apply([plane])[0]
        assert out[0, 0] < out[0, 1]

    def test_constant_plane_preserved(self):
        plane = np.full((12, 12), 42.0)
        out = Scale(30, 7).apply([plane])[0]
        assert np.allclose(out, 42.0)

    def test_by_factor(self):
        scale = Scale.by_factor((40, 60), 0.5)
        assert (scale.out_height, scale.out_width) == (20, 30)

    def test_invalid_params_rejected(self):
        with pytest.raises(TransformError):
            Scale(0, 5)
        with pytest.raises(TransformError):
            Scale(5, 5, method="lanczos")


class TestCrop:
    def test_selects_window(self, rng):
        plane = rng.uniform(0, 1, (20, 30))
        out = Crop(2, 3, 5, 7).apply([plane])[0]
        assert np.array_equal(out, plane[2:7, 3:10])

    def test_out_of_bounds_rejected(self, rng):
        with pytest.raises(TransformError):
            Crop(15, 0, 10, 5).apply([rng.uniform(0, 1, (20, 20))])


class TestRotation:
    def test_rot90_four_turns_is_identity(self, rng):
        plane = rng.uniform(0, 1, (10, 14))
        out = Rotate90(4).apply([plane])[0]
        assert np.array_equal(out, plane)

    def test_rot90_shape_swap(self, rng):
        out = Rotate90(1).apply([rng.uniform(0, 1, (10, 14))])[0]
        assert out.shape == (14, 10)
        assert Rotate90(1).output_shape((10, 14)) == (14, 10)

    def test_rot90_matches_numpy(self, rng):
        plane = rng.uniform(0, 1, (6, 8))
        assert np.array_equal(
            Rotate90(3).apply([plane])[0], np.rot90(plane, 3)
        )

    def test_arbitrary_rotation_zero_degrees_identity(self, rng):
        plane = rng.uniform(0, 1, (12, 12))
        assert np.allclose(Rotate(0.0).apply([plane])[0], plane, atol=1e-9)

    def test_arbitrary_rotation_preserves_shape(self, rng):
        out = Rotate(33.0).apply([rng.uniform(0, 1, (15, 21))])[0]
        assert out.shape == (15, 21)

    def test_rotation_energy_bounded(self, rng):
        plane = rng.uniform(0, 1, (16, 16))
        out = Rotate(45.0).apply([plane])[0]
        assert out.max() <= plane.max() + 1e-9
        assert out.min() >= -1e-9  # zero fill outside


class TestFilterAndKernels:
    def test_box_kernel_normalized(self):
        assert box_kernel(5).sum() == pytest.approx(1.0)

    def test_gaussian_kernel_normalized_and_peaked(self):
        k = gaussian_kernel(1.5)
        assert k.sum() == pytest.approx(1.0)
        assert k.max() == k[k.shape[0] // 2, k.shape[1] // 2]

    def test_sharpen_preserves_flat_regions(self):
        plane = np.full((10, 10), 50.0)
        out = Filter(sharpen_kernel()).apply([plane])[0]
        assert np.allclose(out[2:-2, 2:-2], 50.0)

    def test_blur_reduces_variance(self, rng):
        plane = rng.uniform(0, 255, (20, 20))
        out = Filter(gaussian_kernel(2.0)).apply([plane])[0]
        assert out.var() < plane.var()

    def test_invalid_kernels_rejected(self):
        with pytest.raises(TransformError):
            box_kernel(0)
        with pytest.raises(TransformError):
            gaussian_kernel(-1.0)
        with pytest.raises(TransformError):
            Filter(np.zeros(3))


class TestOverlay:
    def test_alpha_zero_is_identity(self, rng):
        planes = _planes(rng)
        out = Overlay([np.zeros_like(p) for p in planes], 0.0).apply(planes)
        for o, p in zip(out, planes):
            assert np.allclose(o, p)

    def test_alpha_one_replaces(self, rng):
        planes = _planes(rng)
        over = _planes(rng)
        out = Overlay(over, 1.0).apply(planes)
        for o, v in zip(out, over):
            assert np.allclose(o, v)

    def test_bad_alpha_rejected(self, rng):
        with pytest.raises(TransformError):
            Overlay(_planes(rng), 1.5)

    def test_plane_count_mismatch_rejected(self, rng):
        with pytest.raises(TransformError):
            Overlay(_planes(rng, n=1), 0.5).apply(_planes(rng, n=3))


class TestSerialization:
    @pytest.mark.parametrize(
        "transform",
        [
            Scale(10, 20, "nearest"),
            Crop(1, 2, 3, 4),
            Rotate90(3),
            Rotate(12.25),
            Filter(gaussian_kernel(1.0)),
            Pipeline([Scale(8, 8), Rotate90(1)]),
        ],
        ids=lambda t: t.name,
    )
    def test_params_roundtrip(self, rng, transform):
        rebuilt = transform_from_params(transform.to_params())
        planes = _planes(rng, shape=(16, 24))
        for a, b in zip(transform.apply(planes), rebuilt.apply(planes)):
            assert np.allclose(a, b)

    def test_unknown_name_rejected(self):
        with pytest.raises(TransformError):
            transform_from_params({"name": "teleport"})


class TestRecompress:
    def test_reduces_size(self, smooth_image):
        from repro.jpeg.filesize import encoded_size_bytes

        recompressed = Recompress(30).apply_to_image(smooth_image)
        assert encoded_size_bytes(recompressed) < encoded_size_bytes(
            smooth_image
        )

    def test_preserves_dimensions(self, smooth_image):
        out = Recompress(30).apply_to_image(smooth_image)
        assert (out.height, out.width) == (
            smooth_image.height,
            smooth_image.width,
        )

    def test_quality_bounds(self):
        with pytest.raises(TransformError):
            Recompress(0)

    def test_params_roundtrip(self):
        rc = Recompress.from_params({"quality": 35})
        assert rc.quality == 35
