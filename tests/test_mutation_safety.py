"""Hot paths must never mutate caller-owned arrays or containers.

Aliasing bugs here are silent and data-dependent: a perturbation that
scribbles on the sender's original, or a quantization table shared by
reference, corrupts results far from the call site. Each test hands a
function its own arrays and asserts they come back bit-identical.
"""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.reconstruct import reconstruct_regions
from repro.core.roi import RegionOfInterest
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.quantization import standard_luminance_table
from repro.transforms import Pipeline, Scale
from repro.util.rect import Rect


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


@pytest.fixture()
def image(rng):
    return CoefficientImage.from_array(
        rng.integers(0, 256, size=(48, 64, 3), dtype=np.uint8).astype(
            np.uint8
        ),
        quality=75,
    )


def _roi_and_keys(image):
    roi = RegionOfInterest(
        region_id="r0",
        rect=Rect(0, 0, image.height, image.width),
        scheme="puppies-c",
    )
    keys = {
        matrix_id: generate_private_key(matrix_id, "owner")
        for matrix_id in roi.matrix_ids()
    }
    return [roi], keys


def test_from_array_leaves_pixels_untouched(rng):
    pixels = rng.integers(0, 256, size=(32, 40, 3), dtype=np.uint8)
    before = pixels.copy()
    CoefficientImage.from_array(pixels, quality=50)
    assert np.array_equal(pixels, before)


def test_from_sample_planes_copies_int32_tables():
    table = standard_luminance_table().astype(np.int32)
    planes = [np.zeros((16, 16), dtype=np.float64)]
    image = CoefficientImage.from_sample_planes(planes, [table], "gray")
    table[:] = 1  # caller scribbles on its own table afterwards
    assert not np.array_equal(image.quant_tables[0], table)


def test_constructor_owns_channel_list():
    chan = np.zeros((2, 2, 8, 8), dtype=np.int32)
    table = standard_luminance_table().astype(np.int32)
    channels = [chan]
    tables = [table]
    image = CoefficientImage(channels, tables, 16, 16, "gray")
    channels.append(chan)  # caller reuses its list
    tables.append(table)
    assert image.n_channels == 1
    assert len(image.quant_tables) == 1


def test_perturb_regions_leaves_input_image_untouched(image):
    rois, keys = _roi_and_keys(image)
    before = [chan.copy() for chan in image.channels]
    tables_before = [t.copy() for t in image.quant_tables]
    perturb_regions(image, rois, keys)
    for chan, snapshot in zip(image.channels, before):
        assert np.array_equal(chan, snapshot)
    for table, snapshot in zip(image.quant_tables, tables_before):
        assert np.array_equal(table, snapshot)


def test_reconstruct_regions_leaves_input_untouched(image):
    rois, keys = _roi_and_keys(image)
    perturbed, public = perturb_regions(image, rois, keys)
    before = [chan.copy() for chan in perturbed.channels]
    recovered = reconstruct_regions(perturbed, public, keys)
    for chan, snapshot in zip(perturbed.channels, before):
        assert np.array_equal(chan, snapshot)
    assert recovered.coefficients_equal(image)


def test_transform_pipeline_leaves_input_planes_untouched(image):
    planes = image.to_sample_planes()
    before = [plane.copy() for plane in planes]
    Pipeline([Scale(24, 32)]).apply(planes)
    for plane, snapshot in zip(planes, before):
        assert np.array_equal(plane, snapshot)


def test_psp_lossless_record_survives_caller_op_mutation(image):
    """The PSP's published lossless record must be a deep copy of the
    caller's op dict — mutating the op (including nested lists) after
    the download must not rewrite the record."""
    from repro.core.psp import Psp

    rois, keys = _roi_and_keys(image)
    perturbed, public = perturb_regions(image, rois, keys)
    psp = Psp()
    psp.upload("img", perturbed, public)
    op = {"op": "rotate90", "turns": 1, "trail": [["a"], ["b"]]}
    _transformed, published = psp.download_lossless("img", op)
    op["turns"] = 3
    op["trail"][0].append("mutated")
    assert published.transform_params["turns"] == 1
    assert published.transform_params["trail"] == [["a"], ["b"]]


def test_service_caches_return_defensive_copies(image):
    """A caller scribbling on a served download must not corrupt what
    the next request sees (cache master isolation)."""
    from repro.core.psp import Psp
    from repro.service import PspService

    rois, keys = _roi_and_keys(image)
    perturbed, public = perturb_regions(image, rois, keys)
    with PspService(workers=2) as service:
        service.upload("img", perturbed, public)
        first = service.download("img")
        first.channels[0][:] = -1
        first.quant_tables[0][:] = 1
        again = service.download("img")
        assert again.coefficients_equal(perturbed)
        planes, _public = service.download_transformed(
            "img", Pipeline([Scale(24, 32)])
        )
        planes[0][:] = 0.0
        planes_again, _public = service.download_transformed(
            "img", Pipeline([Scale(24, 32)])
        )
        assert not np.array_equal(planes[0], planes_again[0])
