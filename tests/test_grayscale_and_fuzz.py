"""Grayscale end-to-end paths and randomized codec fuzzing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.keys import generate_private_key
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.reconstruct import reconstruct_regions
from repro.core.roi import RegionOfInterest
from repro.core.shadow import reconstruct_transformed
from repro.jpeg.codec import decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.filesize import encoded_size_bytes
from repro.transforms import Scale
from repro.util.errors import ReproError
from repro.util.rect import Rect


@pytest.fixture(scope="module")
def gray_image():
    rng = np.random.default_rng(41)
    arr = rng.integers(0, 256, (56, 72), dtype=np.uint8)
    return CoefficientImage.from_array(arr, quality=75)


class TestGrayscaleEndToEnd:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_perturb_reconstruct_grayscale(self, gray_image, scheme):
        roi = RegionOfInterest("r", Rect(8, 8, 24, 32), scheme=scheme)
        key = generate_private_key(roi.matrix_id, "gray-owner")
        perturbed, public = perturb_regions(
            gray_image, [roi], {roi.matrix_id: key}
        )
        assert perturbed.n_channels == 1
        recovered = reconstruct_regions(
            perturbed, public, {roi.matrix_id: key}
        )
        assert recovered.coefficients_equal(gray_image)

    def test_shadow_recovery_grayscale(self, gray_image):
        roi = RegionOfInterest("r", Rect(8, 8, 24, 32))
        key = generate_private_key(roi.matrix_id, "gray-owner")
        perturbed, public = perturb_regions(
            gray_image, [roi], {roi.matrix_id: key}
        )
        transform = Scale(28, 36)
        transformed = transform.apply(perturbed.to_sample_planes())
        recovered = reconstruct_transformed(
            transformed, transform, public, {roi.matrix_id: key}
        )
        truth = transform.apply(gray_image.to_sample_planes())
        assert np.allclose(recovered[0], truth[0], atol=1e-8)

    def test_grayscale_codec_roundtrip(self, gray_image):
        for optimize in (False, True):
            data = encode_image(gray_image, optimize=optimize)
            assert decode_image(data).coefficients_equal(gray_image)
            assert len(data) == encoded_size_bytes(
                gray_image, optimize=optimize
            )


# Random-but-valid coefficient images: the codec contract is exact
# round-trips for any coefficients in the JPEG range, not only for
# encoder-produced ones (perturbation writes arbitrary in-range values).
coefficient_arrays = hnp.arrays(
    dtype=np.int32,
    shape=st.tuples(
        st.integers(1, 4), st.integers(1, 4)
    ).map(lambda bybx: (bybx[0], bybx[1], 8, 8)),
    elements=st.integers(-1024, 1023),
)


class TestCodecFuzz:
    @given(coefficient_arrays, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_arbitrary_inrange_coefficients(self, blocks, optimize):
        by, bx = blocks.shape[:2]
        image = CoefficientImage(
            [blocks],
            [np.full((8, 8), 7, dtype=np.int32)],
            by * 8,
            bx * 8,
            "gray",
        )
        data = encode_image(image, optimize=optimize)
        assert decode_image(data).coefficients_equal(image)
        assert len(data) == encoded_size_bytes(image, optimize=optimize)

    @given(coefficient_arrays)
    @settings(max_examples=25, deadline=None)
    def test_perturb_roundtrip_arbitrary_coefficients(self, blocks):
        by, bx = blocks.shape[:2]
        image = CoefficientImage(
            [blocks],
            [np.full((8, 8), 5, dtype=np.int32)],
            by * 8,
            bx * 8,
            "gray",
        )
        roi = RegionOfInterest(
            "r", Rect(0, 0, by * 8, bx * 8), scheme="puppies-z"
        )
        key = generate_private_key(roi.matrix_id, "fuzz")
        perturbed, public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        recovered = reconstruct_regions(
            perturbed, public, {roi.matrix_id: key}
        )
        assert recovered.coefficients_equal(image)

    def test_truncated_stream_raises_cleanly(self, gray_image):
        data = encode_image(gray_image)
        from repro.util.errors import CodecError

        with pytest.raises((CodecError, ReproError, Exception)):
            decode_image(data[: len(data) // 2])
