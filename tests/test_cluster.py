"""Integration tests for the replicated multi-process PSP cluster.

Everything here spawns real worker processes and talks RPCF over real
sockets — marked ``cluster`` (``make cluster-quick`` runs the matrix).
The two acceptance gates from the issue live here:

* killing one of N workers mid-traffic loses **zero** reads;
* a corrupted shard is healed by read-repair — the repair counter moves
  and a follow-up direct read of the damaged replica returns CRC-clean
  bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterFaultInjector,
    ClusterStore,
    ClusterSupervisor,
    build_cluster_corpus,
    run_cluster_loadgen,
)
from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.psp import Psp
from repro.core.roi import RegionOfInterest
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import ClusterError
from repro.util.rect import Rect

pytestmark = pytest.mark.cluster

#: Injectable no-op sleep: retry paths run instantly in tests.
NO_SLEEP = lambda _s: None  # noqa: E731


def _put_blobs(client, n, prefix="blob"):
    """Cheap corpus of raw (non-decodable) records for routing tests."""
    ids = []
    for index in range(n):
        image_id = f"{prefix}-{index:03d}"
        payload = (f"payload-{index}".encode() * 50)
        assert client.put(image_id, payload, b"{}")
        ids.append(image_id)
    return ids


class TestReplication:
    def test_put_get_roundtrip_and_replica_count(self):
        with ClusterSupervisor(n_workers=3) as sup:
            with sup.client(replication=2) as client:
                ids = _put_blobs(client, 8)
                for image_id in ids:
                    result = client.get(image_id)
                    assert result.clean
                    assert result.record.verify()
                # Every id is held by exactly `replication` workers.
                total = sum(
                    health["items"]
                    for health in client.health().values()
                )
                assert total == 2 * len(ids)

    def test_duplicate_put_returns_false(self):
        with ClusterSupervisor(n_workers=2) as sup:
            with sup.client(replication=2) as client:
                assert client.put("img-a", b"bytes", b"{}")
                assert not client.put("img-a", b"bytes", b"{}")
                assert len(client.ids()) == 1

    def test_unknown_id_raises_keyerror(self):
        with ClusterSupervisor(n_workers=2) as sup:
            with sup.client(replication=2) as client:
                _put_blobs(client, 2)
                with pytest.raises(KeyError):
                    client.get("no-such-id")
                assert not client.has("no-such-id")


class TestFailover:
    def test_kill_one_worker_zero_failed_reads(self):
        """The issue's failover gate: every id stays readable."""
        with ClusterSupervisor(n_workers=3) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 12)
                sup.kill_worker("w1")
                failed = 0
                for _round in range(3):
                    for image_id in ids:
                        try:
                            assert client.get(image_id).clean
                        except (ClusterError, KeyError):
                            failed += 1
                assert failed == 0
                assert all(
                    "w1" != result_source
                    for result_source in (
                        client.get(i).source for i in ids
                    )
                )

    def test_all_replicas_down_is_cluster_error(self):
        with ClusterSupervisor(n_workers=2) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 1)
                sup.kill_worker("w0")
                sup.kill_worker("w1")
                with pytest.raises(ClusterError):
                    client.get(ids[0])

    def test_rejoined_worker_refilled_by_read_repair(self):
        with ClusterSupervisor(n_workers=3) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 6)
                sup.kill_worker("w2")
                sup.restart_worker("w2")  # same port, empty storage
                for image_id in ids:
                    result = client.get(image_id)
                    assert result.clean
                # Read-repair heals what the reads observed: the ids
                # whose *primary* is the rejoined (empty) worker fail
                # over and get rewritten on the spot.
                repaired = client.snapshot_stats()["repairs"]
                w2_primary = [
                    i for i in ids
                    if client.ring.preference(i, 2)[0] == "w2"
                ]
                assert repaired == len(w2_primary) > 0
                # The anti-entropy sweep refills the copies no read
                # happened to consult (w2 as secondary).
                w2_secondary = [
                    i for i in ids
                    if "w2" in client.ring.preference(i, 2)[1:]
                ]
                assert client.anti_entropy(ids) == len(w2_secondary)
                for image_id in w2_primary + w2_secondary:
                    assert client._get_record("w2", image_id).verify()
                # Steady state: a second sweep finds nothing to do.
                assert client.anti_entropy(ids) == 0

    def test_hinted_handoff_replays_missed_writes(self):
        with ClusterSupervisor(n_workers=3) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                sup.kill_worker("w0")
                ids = _put_blobs(client, 6)
                hinted = client.pending_hints()
                w0_ids = [
                    i for i in ids
                    if "w0" in client.ring.preference(i, 2)
                ]
                assert sorted(i for _w, i in hinted) == sorted(w0_ids)
                # Still down: hints survive a failed drain.
                assert client.drain_hints() == 0
                assert len(client.pending_hints()) == len(w0_ids)
                sup.restart_worker("w0")
                assert client.drain_hints() == len(w0_ids)
                assert client.pending_hints() == []
                for image_id in w0_ids:
                    record = client._get_record("w0", image_id)
                    assert record.verify()


class TestReadRepair:
    def test_corrupted_shard_is_healed(self):
        """The issue's read-repair gate."""
        with ClusterSupervisor(n_workers=3, chaos_ops=True) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 4)
                victim_id = ids[0]
                primary = client.ring.preference(victim_id, 2)[0]
                client.corrupt_stored(primary, victim_id, n_bits=10)
                # Sanity: the stored copy really is rotten now.
                assert not client._get_record(
                    primary, victim_id
                ).verify()
                result = client.get(victim_id)
                assert result.clean
                assert result.record.verify()
                assert result.repaired == [primary]
                assert client.snapshot_stats()["repairs"] == 1
                assert client.snapshot_stats()["damaged_reads"] == 1
                # Follow-up direct read: the replica serves clean bytes.
                assert client._get_record(primary, victim_id).verify()

    def test_all_replicas_damaged_falls_back_to_salvage(self):
        with ClusterSupervisor(n_workers=2, chaos_ops=True) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 1)
                for n, worker in enumerate(
                    client.ring.preference(ids[0], 2)
                ):
                    client.corrupt_stored(
                        worker, ids[0], n_bits=8, seed=f"rot-{n}"
                    )
                result = client.get(ids[0])
                assert not result.clean  # salvage decoder's problem now
                assert client.snapshot_stats()["salvage_fallbacks"] == 1
                # No clean source exists, so nothing was "repaired".
                assert client.snapshot_stats()["repairs"] == 0


class TestWireFaults:
    def test_corrupted_frames_are_retried_transparently(self):
        faults = {"w0": ClusterFaultInjector(corrupt_every=2)}
        with ClusterSupervisor(n_workers=2, faults=faults) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 5)
                for _round in range(3):
                    for image_id in ids:
                        assert client.get(image_id).clean
                stats = client.snapshot_stats()
                assert stats["wire_retries"] > 0
                assert stats["salvage_fallbacks"] == 0

    def test_dropped_connections_are_retried_transparently(self):
        faults = {"w0": ClusterFaultInjector(drop_every=2)}
        with ClusterSupervisor(n_workers=2, faults=faults) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 5)
                for _round in range(3):
                    for image_id in ids:
                        assert client.get(image_id).clean

    def test_slow_primary_loses_to_hedge(self):
        faults = {
            "w0": ClusterFaultInjector(delay_every=1, delay_s=0.5)
        }
        with ClusterSupervisor(n_workers=2, faults=faults) as sup:
            with sup.client(
                replication=2, hedge_delay=0.02, sleep=NO_SLEEP
            ) as client:
                ids = _put_blobs(client, 6)
                slow_primary = [
                    i for i in ids
                    if client.ring.preference(i, 2)[0] == "w0"
                ]
                assert slow_primary, "corpus never routed to w0"
                for image_id in slow_primary:
                    result = client.get(image_id)
                    assert result.clean
                    assert result.hedged
                    assert result.source == "w1"
                stats = client.snapshot_stats()
                assert stats["hedges"] >= len(slow_primary)
                assert stats["hedge_wins"] >= len(slow_primary)


class TestClusterStore:
    def test_psp_serves_from_the_cluster_unchanged(self):
        rng = np.random.default_rng(7)
        array = rng.integers(0, 256, (48, 64, 3), dtype=np.uint8)
        image = CoefficientImage.from_array(array, quality=75)
        region = RegionOfInterest("r0", Rect(8, 8, 16, 16))
        keys = {
            matrix_id: generate_private_key(matrix_id, "owner")
            for matrix_id in region.matrix_ids()
        }
        perturbed, public = perturb_regions(image, [region], keys)
        with ClusterSupervisor(n_workers=3) as sup:
            with sup.client(replication=2, sleep=NO_SLEEP) as client:
                psp = Psp(store=ClusterStore(client))
                psp.upload("img-0", perturbed, public)
                assert "img-0" in psp.image_ids()
                downloaded = psp.download("img-0")
                assert downloaded.coefficients_equal(perturbed)
                with pytest.raises(Exception):
                    psp.upload("img-0", perturbed, public)  # duplicate
                # The PSP keeps serving with a dead worker.
                sup.kill_worker(
                    client.ring.preference("img-0", 2)[0]
                )
                assert psp.download("img-0").coefficients_equal(
                    perturbed
                )


class TestClusterLoadgen:
    def test_loadgen_under_worker_kill_zero_failed_reads(self):
        with ClusterSupervisor(n_workers=3) as sup:
            with sup.client(replication=2) as client:
                ids = build_cluster_corpus(client, 4, seed=11)
            sup.kill_worker("w2")
            report = run_cluster_loadgen(
                sup.endpoints(),
                ids,
                processes=2,
                requests=40,
                scrub_ratio=0.5,
                seed=11,
            )
        assert report.requests == 40
        assert report.failed_reads == 0
        assert report.errors == 0
        assert report.throughput_rps > 0
        assert set(report.op_counts) <= {"get", "scrub"}
        assert report.stats["gets"] > 0
        # The report renders without blowing up.
        assert any("failover" in line for line in report.lines())
