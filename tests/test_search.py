"""Retrieval engine tests (the Fig. 2 substrate)."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.roi import RegionOfInterest
from repro.datasets import load_dataset, load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.search import SearchEngine, global_descriptor, top_k_overlap
from repro.util.errors import ReproError
from repro.util.rect import Rect


@pytest.fixture(scope="module")
def engine():
    corpus = {
        f"inria-{im.index}": im.array
        for im in load_dataset("inria", n_images=10)
    }
    corpus.update(
        {
            f"pascal-{im.index}": im.array
            for im in load_dataset("pascal", n_images=10)
        }
    )
    eng = SearchEngine()
    eng.index(corpus)
    return eng


class TestDescriptors:
    def test_descriptor_deterministic(self):
        img = load_image("inria", 0).array
        assert np.allclose(global_descriptor(img), global_descriptor(img))

    def test_similar_images_closer_than_dissimilar(self):
        a = load_image("inria", 0).array
        b = load_image("inria", 1).array  # another landscape
        c = load_image("pascal", 3).array  # a document
        da, db, dc = map(global_descriptor, (a, b, c))
        cos = lambda x, y: float(  # noqa: E731
            x @ y / (np.linalg.norm(x) * np.linalg.norm(y))
        )
        assert cos(da, db) > cos(da, dc)


class TestEngine:
    def test_query_self_returns_self_first(self, engine):
        img = load_image("inria", 4).array
        assert engine.query(img, top_k=3)[0] == "inria-4"

    def test_top_k_size(self, engine):
        img = load_image("inria", 0).array
        assert len(engine.query(img, top_k=7)) == 7

    def test_empty_index_rejected(self):
        with pytest.raises(ReproError):
            SearchEngine().index({})
        with pytest.raises(ReproError):
            SearchEngine().query(np.zeros((8, 8, 3)))

    def test_overlap_metric(self):
        assert top_k_overlap(["a", "b"], ["b", "a"]) == 1.0
        assert top_k_overlap(["a", "b"], ["c", "d"]) == 0.0
        assert top_k_overlap([], ["a"]) == 0.0

    def test_partially_perturbed_query_retrieves_similar_results(
        self, engine
    ):
        """The Fig. 2 experiment: a small perturbed ROI barely moves the
        top-10, so the perturbed image remains useful for search."""
        source = load_image("inria", 2)
        image = CoefficientImage.from_array(source.array, quality=75)
        roi = RegionOfInterest("r", Rect(64, 80, 48, 64))
        key = generate_private_key(roi.matrix_id, "o")
        perturbed, _public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        original_results = engine.query(source.array, top_k=10)
        perturbed_results = engine.query(perturbed.to_array(), top_k=10)
        assert top_k_overlap(original_results, perturbed_results) >= 0.6
