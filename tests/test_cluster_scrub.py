"""Anti-entropy tests: digest trees, the scrub daemon, and the cluster
edge bugfixes (hint dedup, bind retry, connection-abort accounting).

Workers here run as *threads* in this process (real sockets, no
subprocesses), and sweeps are driven synchronously via
``ScrubDaemon.sweep()`` — deterministic, no timing races. The
process-level durability story lives in ``test_cluster_durability.py``.
"""

from __future__ import annotations

import errno
import socket
import threading

import pytest

from repro.cluster.client import ClusterClient
from repro.cluster.scrub import (
    ScrubConfig,
    build_tree,
    diff_leaves,
    entry_digest,
    leaf_index,
)
from repro.cluster.wire import (
    MSG_GET,
    MSG_OK,
    TREE_DEPTH,
    TREE_SUMMARY,
    ShardRecord,
    TreeSummary,
    encode_frame,
    pack_id,
    pack_tree_request,
    pack_tree_summary,
    read_frame,
    unpack_tree_response,
)
from repro.cluster.worker import ShardWorker
from repro.util.errors import ClusterError

NO_SLEEP = lambda _s: None  # noqa: E731


def _meta(n, prefix="img"):
    return [(f"{prefix}-{i}", i * 7 + 1, i * 13 + 2) for i in range(n)]


class TestDigestTree:
    def test_same_metadata_same_tree_any_order(self):
        rows = _meta(40)
        forward = build_tree(rows)
        backward = build_tree(list(reversed(rows)))
        assert forward.root == backward.root
        assert forward.leaves == backward.leaves
        assert forward.total == 40

    def test_any_difference_moves_the_root(self):
        rows = _meta(10)
        base = build_tree(rows)
        missing = build_tree(rows[:-1])
        changed = build_tree(
            rows[:-1] + [(rows[-1][0], rows[-1][1] ^ 1, rows[-1][2])]
        )
        extra = build_tree(rows + [("img-extra", 1, 2)])
        assert len({base.root, missing.root, changed.root,
                    extra.root}) == 4

    def test_diff_localises_to_the_changed_leaf(self):
        rows = _meta(64)
        victim = rows[5]
        altered = [
            (vid, crc_e ^ 0xFF, crc_p) if vid == victim[0]
            else (vid, crc_e, crc_p)
            for vid, crc_e, crc_p in rows
        ]
        mismatched = diff_leaves(
            build_tree(rows).leaves, build_tree(altered).leaves
        )
        assert mismatched == [leaf_index(victim[0], TREE_DEPTH)]

    def test_identical_trees_have_no_diff(self):
        rows = _meta(16)
        assert diff_leaves(
            build_tree(rows).leaves, build_tree(rows).leaves
        ) == []

    def test_leaf_index_bounds(self):
        for i in range(200):
            assert 0 <= leaf_index(f"id-{i}", TREE_DEPTH) < 2 ** TREE_DEPTH

    def test_entry_digest_depends_on_all_fields(self):
        assert entry_digest("a", 1, 2) != entry_digest("a", 1, 3)
        assert entry_digest("a", 1, 2) != entry_digest("a", 2, 2)
        assert entry_digest("a", 1, 2) != entry_digest("b", 1, 2)

    def test_summary_roundtrips_over_the_wire_encoding(self):
        summary = build_tree(_meta(25))
        decoded = unpack_tree_response(pack_tree_summary(summary))
        assert isinstance(decoded, TreeSummary)
        assert decoded == summary


class _Fleet:
    """N in-process workers with served sockets and pushed peer maps."""

    def __init__(self, n=3, replication=2, chaos_ops=True):
        self.workers = []
        self.threads = []
        for i in range(n):
            worker = ShardWorker(f"w{i}", port=0, chaos_ops=chaos_ops)
            thread = threading.Thread(target=worker.serve, daemon=True)
            thread.start()
            self.workers.append(worker)
            self.threads.append(thread)
        self.endpoints = {
            w.worker_id: ("127.0.0.1", w.port) for w in self.workers
        }
        for worker in self.workers:
            worker.set_peers(self.endpoints, replication=replication,
                             scrub_interval_s=0)

    def worker(self, worker_id):
        return next(
            w for w in self.workers if w.worker_id == worker_id
        )

    def close(self):
        for worker in self.workers:
            worker.close()


@pytest.fixture()
def fleet():
    f = _Fleet()
    yield f
    f.close()


@pytest.fixture()
def client(fleet):
    with ClusterClient(fleet.endpoints, replication=2,
                       sleep=NO_SLEEP) as c:
        yield c


def _owners(fleet, image_id, replication=2):
    return fleet.workers[0].ring.preference(image_id, replication)


class TestScrubSweep:
    def test_converged_fleet_exchanges_only_digests(self, fleet, client):
        for i in range(12):
            client.put(f"img-{i:03d}", b"enc" * 100, b"pub" * 10)
        for worker in fleet.workers:
            stats = worker.scrub.sweep()
            assert stats["trees_converged"] == len(fleet.workers) - 1
            assert stats["ranges_diffed"] == 0
            assert stats["record_bytes"] == 0
            assert stats["digest_bytes"] > 0

    def test_silent_rot_detected_and_repaired_within_one_sweep(
        self, fleet, client
    ):
        client.put("img-rot", b"enc" * 200, b"pub" * 10)
        victim_id = _owners(fleet, "img-rot")[0]
        victim = fleet.worker(victim_id)
        assert victim.storage.corrupt("img-rot", 6, "chaos")
        assert not victim.storage.get("img-rot").verify()
        stats = victim.scrub.sweep()
        assert stats["rot_detected"] == 1
        assert stats["repairs"] == 1
        healed = victim.storage.get("img-rot")
        assert healed is not None and healed.verify()

    def test_missing_replica_is_refilled_by_tree_diff(self, fleet, client):
        ids = [f"img-{i:03d}" for i in range(10)]
        for image_id in ids:
            client.put(image_id, b"enc" * 100, b"pub" * 10)
        # Erase one worker's storage wholesale (simulates an in-memory
        # worker restart) and let ITS OWN sweep pull everything back.
        victim = fleet.workers[0]
        victim.storage._items.clear()
        stats = victim.scrub.sweep()
        assert stats["ranges_diffed"] > 0
        assert stats["repairs"] > 0
        assert stats["record_bytes"] > 0
        for image_id in ids:
            owners = _owners(fleet, image_id)
            if victim.worker_id in owners:
                got = victim.storage.get(image_id)
                assert got is not None and got.verify(), image_id

    def test_peer_missing_records_are_pushed(self, fleet, client):
        ids = [f"img-{i:03d}" for i in range(10)]
        for image_id in ids:
            client.put(image_id, b"enc" * 100, b"pub" * 10)
        victim = fleet.workers[1]
        victim.storage._items.clear()
        # A *peer's* sweep notices the divergence and pushes its copies.
        healthy = fleet.workers[0]
        stats = healthy.scrub.sweep()
        assert stats["pushed"] > 0
        for image_id in ids:
            owners = _owners(fleet, image_id)
            if victim.worker_id in owners and healthy.worker_id in owners:
                got = victim.storage.get(image_id)
                assert got is not None and got.verify(), image_id

    def test_sweep_budget_caps_record_syncs(self, fleet, client):
        for i in range(12):
            client.put(f"img-{i:03d}", b"enc" * 50, b"pub" * 5)
        victim = fleet.workers[0]
        victim.storage._items.clear()
        victim.scrub.config = ScrubConfig(
            interval_s=0, max_record_syncs=3
        )
        stats = victim.scrub.sweep()
        assert 0 < stats["repairs"] <= 3

    def test_sync_peer_scans_metadata_once_even_when_diverged(
        self, fleet, client, monkeypatch
    ):
        # Regression: _sync_peer used to take a second _scoped_metadata
        # snapshot for the per-id entries, which could diverge from the
        # one that built the tree under concurrent writes (and doubled
        # the O(records) ring-preference scan per peer).
        for i in range(10):
            client.put(f"img-{i:03d}", b"enc" * 50, b"pub" * 5)
        victim = fleet.workers[0]
        victim.storage._items.clear()  # force the full diff path
        calls = {"n": 0}
        real = type(victim.scrub)._scoped_metadata

        def counting(self, peer_id):
            calls["n"] += 1
            return real(self, peer_id)

        monkeypatch.setattr(
            type(victim.scrub), "_scoped_metadata", counting
        )
        stats = victim.scrub.sweep()
        assert stats["ranges_diffed"] > 0
        assert calls["n"] == len(fleet.workers) - 1

    def test_dead_peer_counts_error_not_crash(self, fleet, client):
        client.put("img-a", b"enc" * 50, b"pub" * 5)
        sweeper = fleet.workers[0]
        sweeper.peers = dict(sweeper.peers)
        sweeper.peers["w9"] = ("127.0.0.1", 1)  # nothing listens there
        stats = sweeper.scrub.sweep()
        assert stats["peer_errors"] >= 1

    def test_daemon_start_stop(self, fleet):
        worker = fleet.workers[0]
        worker.scrub.config.interval_s = 30.0
        worker.scrub.start()
        assert worker.scrub.running
        worker.scrub.stop()
        assert not worker.scrub.running

    def test_set_peers_interval_controls_daemon(self, fleet):
        worker = fleet.workers[0]
        worker.set_peers(fleet.endpoints, scrub_interval_s=30.0)
        assert worker.scrub.running
        worker.set_peers(fleet.endpoints, scrub_interval_s=0)
        assert not worker.scrub.running

    def test_counters_flow_into_registry_when_enabled(self, fleet, client):
        client.put("img-rot", b"enc" * 100, b"pub" * 10)
        victim = fleet.worker(_owners(fleet, "img-rot")[0])
        victim.registry.enabled = True
        victim.storage.corrupt("img-rot", 6, "chaos")
        victim.scrub.sweep()
        assert victim.registry.counter_value("scrub.repairs") >= 1
        assert victim.registry.counter_value("storage.segments") == 0
        # storage gauges exist (in-memory storage reports no segments,
        # but the set_counter path must not blow up on it)


class TestTreeWireOp:
    def test_tree_summary_scoped_to_requester(self, fleet, client):
        for i in range(12):
            client.put(f"img-{i:03d}", b"enc" * 50, b"pub" * 5)
        w0, w1 = fleet.workers[0], fleet.workers[1]
        summary = client.fetch_tree("w0", for_worker="w1")
        assert isinstance(summary, TreeSummary)
        expected = [
            row for row in w0.storage.metadata()
            if set(("w0", "w1")) <= set(_owners(fleet, row[0]))
        ]
        assert summary.total == len(expected)
        assert summary == build_tree(expected)

    def test_tree_detail_lists_leaf_entries(self, fleet, client):
        for i in range(12):
            client.put(f"img-{i:03d}", b"enc" * 50, b"pub" * 5)
        summary = client.fetch_tree("w0", for_worker="w0")
        assert summary.total == len(fleet.workers[0].storage.ids())
        for leaf in summary.leaves:
            detail = client.fetch_tree("w0", for_worker="w0", leaf=leaf)
            assert isinstance(detail, dict)
            assert len(detail) == summary.leaves[leaf][0]
            for image_id, (crc_e, crc_p) in detail.items():
                assert leaf_index(image_id, TREE_DEPTH) == leaf
                record = fleet.workers[0].storage.get(image_id)
                assert (record.crc_encoded, record.crc_public) == (
                    crc_e, crc_p
                )

    def test_unknown_scope_worker_answers_empty_tree(self, fleet, client):
        client.put("img-a", b"enc" * 50, b"pub" * 5)
        summary = client.fetch_tree("w0", for_worker="w-not-a-member")
        assert summary.total == 0
        assert summary.leaves == {}

    def test_worker_without_peer_map_answers_empty_tree(self):
        worker = ShardWorker("solo", port=0)
        thread = threading.Thread(target=worker.serve, daemon=True)
        thread.start()
        try:
            worker.storage.put(
                "img-a", ShardRecord.create(b"enc", b"pub"), False
            )
            with socket.create_connection(
                ("127.0.0.1", worker.port), timeout=2.0
            ) as sock:
                sock.sendall(encode_frame(
                    0x09, pack_tree_request("solo", TREE_DEPTH,
                                            TREE_SUMMARY)
                ))
                rtype, payload = read_frame(sock)
            assert rtype == MSG_OK
            assert unpack_tree_response(payload).total == 0
        finally:
            worker.close()


class TestHintDedup:
    """Satellite regression: repeated failed writes to a down worker
    must queue ONE hint per (worker, id), not one per attempt."""

    def test_repeated_failures_hint_once(self, fleet):
        endpoints = dict(fleet.endpoints)
        down = "w9"
        endpoints[down] = ("127.0.0.1", 1)  # connection refused
        with ClusterClient(endpoints, replication=len(endpoints),
                           sleep=NO_SLEEP, connect_timeout=0.2) as client:
            for _ in range(5):
                client.put("img-a", b"enc" * 10, b"pub", overwrite=True)
            hints = client.pending_hints()
            assert hints.count((down, "img-a")) == 1
            assert client.stats["hinted_handoffs"] == 1

    def test_distinct_ids_still_all_hinted(self, fleet):
        endpoints = dict(fleet.endpoints)
        endpoints["w9"] = ("127.0.0.1", 1)
        with ClusterClient(endpoints, replication=len(endpoints),
                           sleep=NO_SLEEP, connect_timeout=0.2) as client:
            for i in range(4):
                client.put(f"img-{i}", b"enc" * 10, b"pub")
            hinted_ids = {
                image_id for worker, image_id in client.pending_hints()
                if worker == "w9"
            }
            assert hinted_ids == {f"img-{i}" for i in range(4)}

    def test_drain_requeue_does_not_duplicate(self, fleet):
        endpoints = dict(fleet.endpoints)
        endpoints["w9"] = ("127.0.0.1", 1)
        with ClusterClient(endpoints, replication=len(endpoints),
                           sleep=NO_SLEEP, connect_timeout=0.2) as client:
            client.put("img-a", b"enc" * 10, b"pub")
            before = client.pending_hints()
            assert client.drain_hints() == 0  # target still down
            client.put("img-a", b"enc" * 10, b"pub", overwrite=True)
            assert client.pending_hints() == before


class TestConnAborted:
    """Satellite regression: a mid-frame disconnect is counted, not a
    silent thread death."""

    def _abort_mid_frame(self, worker):
        with socket.create_connection(
            ("127.0.0.1", worker.port), timeout=2.0
        ) as sock:
            frame = encode_frame(MSG_GET, pack_id("img-x"))
            sock.sendall(frame[: len(frame) // 2])
            # RST instead of FIN so read_frame sees a ConnectionError
            # mid-frame rather than a clean EOF.
            sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                __import__("struct").pack("ii", 1, 0),
            )

    def test_mid_frame_disconnect_bumps_counter(self):
        worker = ShardWorker("w0", port=0, telemetry=True)
        thread = threading.Thread(target=worker.serve, daemon=True)
        thread.start()
        try:
            deadline = threading.Event()
            for _ in range(3):
                self._abort_mid_frame(worker)
            for _ in range(50):
                if worker.stats()["conns_aborted"] >= 3:
                    break
                deadline.wait(0.05)
            stats = worker.stats()
            assert stats["conns_aborted"] >= 3
            assert stats["active_conns"] == 0
            assert worker.registry.counter_value(
                "worker.conn_aborted"
            ) >= 3
        finally:
            worker.close()

    def test_clean_eof_is_not_an_abort(self):
        worker = ShardWorker("w0", port=0)
        thread = threading.Thread(target=worker.serve, daemon=True)
        thread.start()
        try:
            with socket.create_connection(
                ("127.0.0.1", worker.port), timeout=2.0
            ) as sock:
                sock.sendall(encode_frame(MSG_GET, pack_id("img-x")))
                read_frame(sock)  # NOT_FOUND reply
            event = threading.Event()
            for _ in range(50):
                if worker.stats()["active_conns"] == 0:
                    break
                event.wait(0.05)
            assert worker.stats()["conns_aborted"] == 0
        finally:
            worker.close()


class TestBindRetry:
    """Satellite regression: a lingering listener on the target port is
    retried through, not an instant EADDRINUSE crash."""

    def test_listener_asserts_reuseaddr(self):
        worker = ShardWorker("w0", port=0)
        try:
            assert worker._listener.getsockopt(
                socket.SOL_SOCKET, socket.SO_REUSEADDR
            )
        finally:
            worker.close()

    def test_bind_retries_until_port_frees(self):
        blocker = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        blocker.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        port = blocker.getsockname()[1]

        releaser = threading.Timer(0.15, blocker.close)
        releaser.start()
        try:
            worker = ShardWorker("w0", port=port)  # retries through
            assert worker.port == port
            worker.close()
        finally:
            releaser.cancel()
            try:
                blocker.close()
            except OSError:
                pass

    def test_ephemeral_bind_never_retries_other_errors(self):
        worker = ShardWorker("w0", host="127.0.0.1", port=0)
        try:
            with pytest.raises(OSError) as excinfo:
                ShardWorker("w1", host="203.0.113.7", port=0)
            assert excinfo.value.errno != errno.EADDRINUSE
        finally:
            worker.close()
