"""Bit-level I/O tests."""

import pytest

from repro.util.bitio import BitReader, BitWriter
from repro.util.errors import BitstreamError


class TestBitWriter:
    def test_empty_writer_produces_no_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b10110001, 8)
        assert writer.getvalue() == bytes([0b10110001])

    def test_partial_byte_padded_with_ones(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10111111])

    def test_multi_field_packing(self):
        writer = BitWriter()
        writer.write_bits(0b1, 1)
        writer.write_bits(0b0110, 4)
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10110101])

    def test_bit_length_tracks_written_bits(self):
        writer = BitWriter()
        writer.write_bits(0b111, 3)
        writer.write_bits(0, 10)
        assert writer.bit_length == 13

    def test_zero_count_write_is_noop(self):
        writer = BitWriter()
        writer.write_bits(0, 0)
        assert writer.bit_length == 0

    def test_value_too_large_rejected(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write_bits(4, 2)

    def test_negative_value_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(-1, 4)

    def test_negative_count_rejected(self):
        with pytest.raises(BitstreamError):
            BitWriter().write_bits(0, -1)

    def test_long_value_spanning_many_bytes(self):
        writer = BitWriter()
        writer.write_bits((1 << 40) - 3, 41)
        data = writer.getvalue()
        assert len(data) == 6  # 41 bits + padding
        reader = BitReader(data)
        assert reader.read_bits(41) == (1 << 40) - 3


class TestBitReader:
    def test_read_bits_round_trip(self):
        writer = BitWriter()
        values = [(0b1, 1), (0b1010, 4), (0x5A5A, 16), (0b0, 1)]
        for value, count in values:
            writer.write_bits(value, count)
        reader = BitReader(writer.getvalue())
        for value, count in values:
            assert reader.read_bits(count) == value

    def test_exhausted_stream_raises(self):
        reader = BitReader(b"\xff")
        reader.read_bits(8)
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_bits_consumed_and_remaining(self):
        reader = BitReader(b"\x00\x00")
        reader.read_bits(5)
        assert reader.bits_consumed == 5
        assert reader.bits_remaining == 11

    def test_read_zero_bits(self):
        reader = BitReader(b"\xaa")
        assert reader.read_bits(0) == 0
        assert reader.bits_consumed == 0
