"""PSP storage-model tests."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.psp import Psp
from repro.core.roi import RegionOfInterest
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms import Rotate90, Scale
from repro.util.errors import ReproError
from repro.util.rect import Rect


@pytest.fixture()
def uploaded(noise_image):
    roi = RegionOfInterest("r", Rect(8, 8, 24, 24))
    key = generate_private_key(roi.matrix_id, "psp-owner")
    perturbed, public = perturb_regions(
        noise_image, [roi], {roi.matrix_id: key}
    )
    psp = Psp()
    size = psp.upload("img", perturbed, public)
    return psp, perturbed, public, key, size


class TestStorage:
    def test_upload_returns_stored_size(self, uploaded):
        psp, _perturbed, _public, _key, size = uploaded
        assert size == psp.storage_size("img")
        assert size > 0

    def test_stored_image_roundtrips_through_bytes(self, uploaded):
        psp, perturbed, _public, _key, _size = uploaded
        assert psp.download("img").coefficients_equal(perturbed)

    def test_public_data_roundtrips_through_bytes(self, uploaded):
        psp, _perturbed, public, _key, _size = uploaded
        stored_public = psp.public_data("img")
        assert stored_public.height == public.height
        assert [r.region_id for r in stored_public.regions] == [
            r.region_id for r in public.regions
        ]

    def test_duplicate_id_rejected(self, uploaded, noise_image):
        psp, perturbed, public, _key, _size = uploaded
        with pytest.raises(ReproError):
            psp.upload("img", perturbed, public)

    def test_unknown_id_rejected(self, uploaded):
        psp, *_ = uploaded
        with pytest.raises(ReproError):
            psp.download("nope")
        with pytest.raises(ReproError):
            psp.public_data("nope")

    def test_every_path_maps_unknown_id_to_repro_error(self, uploaded):
        """Audit: an unknown id surfaces as ReproError on *every* API,
        never as a bare KeyError from the underlying store."""
        psp, *_ = uploaded
        calls = [
            lambda: psp.stored("nope"),
            lambda: psp.storage_size("nope"),
            lambda: psp.public_data("nope"),
            lambda: psp.download("nope"),
            lambda: psp.download_transformed("nope", Scale(24, 32)),
            lambda: psp.download_lossless(
                "nope", {"op": "rotate90", "turns": 1}
            ),
            lambda: psp.download_recompressed("nope", 50),
        ]
        for call in calls:
            with pytest.raises(ReproError) as excinfo:
                call()
            assert "unknown image id" in str(excinfo.value)

    def test_unknown_id_error_suppresses_keyerror_context(self, uploaded):
        """Regression: the internal dict KeyError must not leak as
        exception context (``raise ... from None``) — tracebacks should
        show one storage-API error, not the store's lookup internals."""
        psp, *_ = uploaded
        try:
            psp.stored("nope")
        except ReproError as error:
            assert error.__suppress_context__
            assert error.__cause__ is None
        else:
            pytest.fail("expected ReproError")

    def test_image_ids_listing(self, uploaded):
        psp, *_ = uploaded
        assert psp.image_ids() == ["img"]


class TestTransformService:
    def test_transform_records_params_on_returned_public(self, uploaded):
        psp, _perturbed, _public, _key, _size = uploaded
        transform = Scale(24, 32)
        _planes, public = psp.download_transformed("img", transform)
        assert public.transform_params == transform.to_params()
        assert public.transform_params["name"] == "scale"

    def test_transformed_download_leaves_stored_public_untouched(
        self, uploaded
    ):
        """Regression: the transform record must not be written back into
        the stored public bytes — a later download of the *original*
        image would silently inherit the previous caller's params."""
        psp, *_ = uploaded
        before = psp.stored("img").public_bytes
        psp.download_transformed("img", Scale(24, 32))
        assert psp.stored("img").public_bytes == before
        assert psp.public_data("img").transform_params is None
        # A second, different transform gets its own clean record.
        _planes, public = psp.download_transformed("img", Rotate90(1))
        assert public.transform_params == Rotate90(1).to_params()
        psp.download_recompressed("img", 30)
        assert psp.public_data("img").transform_params is None

    def test_transform_output_matches_direct_application(self, uploaded):
        psp, perturbed, _public, _key, _size = uploaded
        transform = Rotate90(1)
        planes, _public_t = psp.download_transformed("img", transform)
        direct = transform.apply(perturbed.to_sample_planes())
        for a, b in zip(planes, direct):
            assert np.allclose(a, b, atol=1e-9)

    def test_recompression_uses_requested_quality(self, uploaded):
        psp, _perturbed, _public, _key, _size = uploaded
        recompressed, public = psp.download_recompressed("img", 30)
        assert public.transform_params == {
            "name": "recompress", "quality": 30,
        }
        # Coarser tables than the stored copy's.
        stored = psp.download("img")
        assert (
            recompressed.quant_tables[0].sum()
            > stored.quant_tables[0].sum()
        )

    def test_lossless_record_not_aliased_to_caller_op(self, uploaded):
        """Regression: ``download_lossless`` used a shallow ``dict(op)``,
        so nested values stayed aliased to the caller's dict and a caller
        mutating its op after download silently corrupted the published
        record."""
        psp, *_ = uploaded
        op = {"op": "crop", "y": 0, "x": 0, "h": 16, "w": 16,
              "note": ["roi", [0, 0, 16, 16]]}
        _image, public = psp.download_lossless("img", op)
        op["h"] = 8
        op["note"][1][2] = 999  # mutate a *nested* value too
        assert public.transform_params["h"] == 16
        assert public.transform_params["note"] == ["roi", [0, 0, 16, 16]]

    def test_psp_never_sees_plaintext_region(self, uploaded, noise_image):
        """The stored bytes decode to a scrambled region, always."""
        psp, *_ = uploaded
        stored = psp.download("img")
        assert not stored.coefficients_equal(noise_image)
