"""Privacy must hold for *transformed* downloads too.

The PSP (or any keyless downloader) can request scaled/rotated copies; if
a transformation leaked protected content, Scenario 2 would be a privacy
hole rather than a feature. These tests run the inference attacks against
transformed perturbed images.
"""

import numpy as np
import pytest

from repro.attacks import sift_attack
from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.datasets import load_image
from repro.jpeg import color as colorlib
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms import Rotate90, Scale
from repro.util.rect import Rect
from repro.vision import detect_faces
from repro.vision.metrics import detection_precision_recall, psnr


def _planes_to_rgb(planes):
    ycc = np.stack(planes, axis=-1)
    return colorlib.to_uint8(colorlib.ycbcr_to_rgb(ycc))


@pytest.fixture(scope="module")
def protected_portrait():
    source = load_image("caltech", 0)
    image = CoefficientImage.from_array(source.array, quality=75)
    by, bx = image.blocks_shape
    roi = RegionOfInterest(
        "whole",
        Rect(0, 0, by * 8, bx * 8),
        PrivacySettings.for_level(PrivacyLevel.MEDIUM),
    )
    key = generate_private_key(roi.matrix_id, "transformed-victim")
    perturbed, public = perturb_regions(image, [roi], {roi.matrix_id: key})
    return source, image, perturbed, public, key


class TestTransformedDownloadsStayPrivate:
    @pytest.mark.parametrize(
        "transform", [Scale(74, 112), Rotate90(1)],
        ids=["downscale", "rotate"],
    )
    def test_faces_not_detectable_after_transform(
        self, protected_portrait, transform
    ):
        source, _image, perturbed, _public, _key = protected_portrait
        transformed = transform.apply(perturbed.to_sample_planes())
        pixels = _planes_to_rgb(transformed)
        # Ground-truth boxes mapped through the transformation.
        if isinstance(transform, Scale):
            fy = transform.out_height / source.array.shape[0]
            fx = transform.out_width / source.array.shape[1]
            truth = [box.scaled(fy, fx) for box in source.faces]
        else:
            h, w = source.array.shape[:2]
            truth = [
                Rect(w - box.x2, box.y, box.w, box.h)
                for box in source.faces
            ]
        _, _, detected = detection_precision_recall(
            detect_faces(pixels), truth
        )
        assert detected == 0

    def test_sift_attack_on_scaled_download(self, protected_portrait):
        source, image, perturbed, _public, _key = protected_portrait
        transform = Scale(74, 112)
        scaled_original = _planes_to_rgb(
            transform.apply(image.to_sample_planes())
        )
        scaled_perturbed = _planes_to_rgb(
            transform.apply(perturbed.to_sample_planes())
        )
        result = sift_attack(scaled_original, scaled_perturbed)
        assert result.n_matched <= 0.15 * max(result.n_original, 1)

    def test_scaling_does_not_average_out_perturbation(
        self, protected_portrait
    ):
        """Heavy downscaling averages the perturbation noise — does the
        content re-emerge? The DC component of the perturbation survives
        averaging (it is a bias, not zero-mean noise per block), so no."""
        source, image, perturbed, _public, _key = protected_portrait
        transform = Scale(37, 56)  # 4x downscale
        truth = transform.apply(image.to_sample_planes())
        scrambled = transform.apply(perturbed.to_sample_planes())
        quality = min(psnr(t, s) for t, s in zip(truth, scrambled))
        assert quality < 15
