"""Baseline scheme tests: exact round trips and transformation behaviour."""

import numpy as np
import pytest

from repro.baselines import (
    P3,
    CoefficientPermutation,
    Cryptagram,
    DictionaryEncryption,
    LsbSteganography,
    MultipleHuffmanTables,
    QuantTableEncryption,
    SignFlip,
    UnsupportedTransform,
)
from repro.baselines.registry import make_all_baselines, roundtrip_exact
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms import Crop, Recompress, Rotate90, Scale
from repro.vision.metrics import psnr

PARSEABLE = (
    QuantTableEncryption,
    DictionaryEncryption,
    CoefficientPermutation,
    SignFlip,
)


@pytest.fixture(scope="module")
def street_image():
    return CoefficientImage.from_array(
        load_image("pascal", 0).array, quality=75
    )


@pytest.fixture(scope="module")
def brng():
    return np.random.default_rng(11)


class TestRoundTrips:
    @pytest.mark.parametrize(
        "scheme_cls",
        [
            Cryptagram,
            MultipleHuffmanTables,
            QuantTableEncryption,
            DictionaryEncryption,
            CoefficientPermutation,
            SignFlip,
        ],
        ids=lambda c: c.name,
    )
    def test_exact_roundtrip(self, street_image, brng, scheme_cls):
        assert roundtrip_exact(scheme_cls(), street_image, brng)

    def test_stego_roundtrip_restores_region_exactly(
        self, street_image, brng
    ):
        scheme = LsbSteganography()
        encrypted = scheme.encrypt(street_image, brng)
        decrypted = scheme.decrypt(encrypted)
        region = encrypted.secret.region
        for dec, orig in zip(decrypted.channels, street_image.channels):
            assert np.array_equal(
                dec[region.y : region.y2, region.x : region.x2],
                orig[region.y : region.y2, region.x : region.x2],
            )
        # The cover carries LSB noise but stays visually faithful.
        assert (
            psnr(decrypted.to_float_array(), street_image.to_float_array())
            > 30
        )

    def test_all_baselines_factory(self):
        names = {s.name for s in make_all_baselines()}
        assert names == {
            "cryptagram",
            "mht",
            "quant-encrypt",
            "dict-encrypt",
            "coeff-permute",
            "sign-flip",
            "steganography",
        }


class TestStoredArtifactsAreScrambled:
    @pytest.mark.parametrize("scheme_cls", PARSEABLE, ids=lambda c: c.name)
    def test_stored_differs_visibly(self, street_image, brng, scheme_cls):
        encrypted = scheme_cls().encrypt(street_image, brng)
        stored_pixels = encrypted.stored.to_float_array()
        original_pixels = street_image.to_float_array()
        assert psnr(stored_pixels, original_pixels) < 22


class TestTransformCompatibility:
    @pytest.mark.parametrize("scheme_cls", PARSEABLE, ids=lambda c: c.name)
    @pytest.mark.parametrize("turns", [1, 2, 3])
    def test_rotation_recovery_exact(
        self, street_image, brng, scheme_cls, turns
    ):
        scheme = scheme_cls()
        encrypted = scheme.encrypt(street_image, brng)
        transform = Rotate90(turns)
        planes = transform.apply(encrypted.stored.to_padded_sample_planes())
        recovered = scheme.recover_transformed(planes, transform, encrypted)
        truth = transform.apply(street_image.to_padded_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-6)

    @pytest.mark.parametrize("scheme_cls", PARSEABLE, ids=lambda c: c.name)
    def test_aligned_crop_recovery_exact(
        self, street_image, brng, scheme_cls
    ):
        scheme = scheme_cls()
        encrypted = scheme.encrypt(street_image, brng)
        transform = Crop(8, 16, 48, 64)
        planes = transform.apply(encrypted.stored.to_padded_sample_planes())
        recovered = scheme.recover_transformed(planes, transform, encrypted)
        truth = transform.apply(street_image.to_padded_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-6)

    @pytest.mark.parametrize("scheme_cls", PARSEABLE, ids=lambda c: c.name)
    def test_scaling_unsupported(self, street_image, brng, scheme_cls):
        scheme = scheme_cls()
        encrypted = scheme.encrypt(street_image, brng)
        transform = Scale(40, 60)
        planes = transform.apply(encrypted.stored.to_padded_sample_planes())
        with pytest.raises(UnsupportedTransform):
            scheme.recover_transformed(planes, transform, encrypted)

    def test_unaligned_crop_unsupported(self, street_image, brng):
        scheme = SignFlip()
        encrypted = scheme.encrypt(street_image, brng)
        transform = Crop(3, 5, 20, 20)
        planes = transform.apply(encrypted.stored.to_padded_sample_planes())
        with pytest.raises(UnsupportedTransform):
            scheme.recover_transformed(planes, transform, encrypted)

    def test_mht_unparseable_no_transform(self, street_image, brng):
        scheme = MultipleHuffmanTables()
        encrypted = scheme.encrypt(street_image, brng)
        assert not scheme.psp_can_parse()
        with pytest.raises(UnsupportedTransform):
            scheme.recover_transformed([], Rotate90(1), encrypted)

    def test_signflip_recompression_exact(self, street_image, brng):
        scheme = SignFlip()
        encrypted = scheme.encrypt(street_image, brng)
        recompress = Recompress(45)
        recompressed = recompress.apply_to_image(encrypted.stored)
        recovered = scheme.recover_recompressed(recompressed, encrypted)
        truth = recompress.apply_to_image(street_image)
        assert recovered.coefficients_equal(truth)

    def test_permute_recompression_lossy(self, street_image, brng):
        scheme = CoefficientPermutation()
        encrypted = scheme.encrypt(street_image, brng)
        recompress = Recompress(45)
        recompressed = recompress.apply_to_image(encrypted.stored)
        recovered = scheme.recover_recompressed(recompressed, encrypted)
        truth = recompress.apply_to_image(street_image)
        assert not recovered.coefficients_equal(truth)


class TestP3:
    @pytest.fixture(scope="class")
    def split(self, street_image):
        return P3().split(street_image)

    def test_untransformed_recovery_exact(self, street_image, split):
        assert P3().recover(split).coefficients_equal(street_image)

    def test_public_part_is_clipped(self, split):
        t = split.threshold
        for chan in split.public.channels:
            assert np.abs(chan).max() <= t
            assert (chan[..., 0, 0] == 0).all()  # DC removed

    def test_private_ac_is_unsigned(self, split):
        for chan in split.private.channels:
            ac = chan.copy()
            ac[..., 0, 0] = 0
            assert ac.min() >= 0

    def test_public_smaller_than_private_plus_public(
        self, street_image, split
    ):
        from repro.jpeg.filesize import encoded_size_bytes

        original = encoded_size_bytes(street_image, optimize=True)
        assert split.public_size_bytes() < original

    def test_whole_image_protection_hides_content(
        self, street_image, split
    ):
        assert (
            psnr(
                split.public.to_float_array(),
                street_image.to_float_array(),
            )
            < 20
        )

    def test_scaled_recovery_is_lossy(self, street_image, split):
        # The Fig. 4 phenomenon: P3 loses fine detail after PSP scaling.
        transform = Scale(48, 72)
        public_t = transform.apply(split.public.to_sample_planes())
        recovered = P3().recover_transformed(public_t, split, transform)
        truth = transform.apply(street_image.to_sample_planes())
        quality = min(psnr(r, t) for r, t in zip(recovered, truth))
        assert 15 < quality < 40  # recognizable but visibly degraded

    def test_threshold_validation(self):
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            P3(threshold=0)

    def test_custom_threshold_affects_split(self, street_image):
        loose = P3(threshold=50).split(street_image)
        tight = P3(threshold=5).split(street_image)
        assert (
            tight.public_size_bytes() < loose.public_size_bytes()
        )
