"""Cross-module integration tests: the full paper workflows end to end."""

import numpy as np
import pytest

from repro.attacks import sift_attack
from repro.core import (
    PrivacyLevel,
    PrivacySettings,
    Receiver,
    RegionOfInterest,
    Sender,
    SharingSession,
    recommend_rois,
)
from repro.core.psp import Psp
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.filesize import encoded_size_bytes
from repro.transforms import Pipeline, Rotate90, Scale
from repro.util.rect import Rect
from repro.vision import detect_faces, detect_text_regions
from repro.vision.metrics import detection_precision_recall, psnr


class TestDetectorDrivenWorkflow:
    """Fig. 6's actual pipeline: detectors propose ROIs, owner perturbs."""

    def test_face_detection_to_protection_roundtrip(self):
        source = load_image("caltech", 1)
        detections = detect_faces(source.array)
        assert detections, "detector must find the portrait's face"
        image = CoefficientImage.from_array(source.array, quality=75)
        # Owners add a margin around face detections (Section IV-A allows
        # editing the recommendations); 35% covers detector under-reach.
        rois = recommend_rois(
            detections,
            image.height,
            image.width,
            source="face",
            merge_clusters=True,
            expand=0.35,
        )
        session = SharingSession("owner")
        session.share(
            "portrait",
            image,
            rois,
            grants={"friend": [roi.matrix_id for roi in rois]},
        )
        # Friend recovers exactly; the PSP copy hides the face.
        assert session.view("friend", "portrait").coefficients_equal(image)
        public_pixels = session.view_public("portrait").to_array()
        _, _, tp = detection_precision_recall(
            detect_faces(public_pixels), source.faces
        )
        assert tp == 0

    def test_document_ssn_protection(self):
        source = load_image("pascal", 3)  # a document scan
        boxes = detect_text_regions(source.array)
        assert boxes
        image = CoefficientImage.from_array(source.array, quality=75)
        rois = recommend_rois(boxes, image.height, image.width, source="text")
        session = SharingSession("hr-department")
        session.share("record", image, rois)
        public_pixels = session.view_public("record").to_array()
        from repro.vision import read_text

        # No stored text region should still read out a 9-digit SSN.
        for box in source.texts:
            text = read_text(public_pixels, box)
            digits = "".join(c for c in text if c.isdigit())
            ssn_digits = "".join(
                c
                for c in read_text(source.array, box)
                if c.isdigit()
            )
            if len(ssn_digits) == 9:
                assert digits != ssn_digits


class TestTransformedSharingEndToEnd:
    def test_psp_pipeline_scale_then_rotate(self):
        source = load_image("pascal", 1)
        image = CoefficientImage.from_array(source.array, quality=75)
        sender = Sender("alice")
        psp = Psp()
        receiver = Receiver("bob")
        roi = RegionOfInterest(
            "r", Rect(8, 16, 32, 40),
            PrivacySettings.for_level(PrivacyLevel.HIGH),
        )
        request = sender.protect_image(image, [roi])
        sender.upload(psp, "img", request)
        grants = sender.grant("bob", receiver.dh.public, [roi.matrix_id])
        receiver.accept_grants("alice", sender.dh.public, grants)

        transform = Pipeline([Scale(56, 88), Rotate90(1)])
        recovered = receiver.fetch_transformed(psp, "img", transform)
        truth = transform.apply(image.to_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-7)

    def test_puppies_beats_p3_after_scaling(self):
        """The Fig. 4 head-to-head: PuPPIeS recovers exactly, P3 loses
        detail, on the same image and the same transformation."""
        from repro.baselines import P3

        source = load_image("pascal", 0)
        image = CoefficientImage.from_array(source.array, quality=75)
        transform = Scale(123, 188)  # 1.5x upscale
        truth = transform.apply(image.to_sample_planes())

        # PuPPIeS path.
        session = SharingSession("owner")
        by, bx = image.blocks_shape
        roi = RegionOfInterest("whole", Rect(0, 0, by * 8, bx * 8))
        session.share(
            "img", image, [roi], grants={"friend": [roi.matrix_id]}
        )
        recovered = session.receivers["friend"].fetch_transformed(
            session.psp, "img", transform
        )
        puppies_psnr = min(psnr(r, t) for r, t in zip(recovered, truth))

        # P3 path.
        p3 = P3()
        split = p3.split(image)
        public_t = transform.apply(split.public.to_sample_planes())
        p3_recovered = p3.recover_transformed(public_t, split, transform)
        p3_psnr = min(psnr(r, t) for r, t in zip(p3_recovered, truth))

        assert puppies_psnr > 80  # exact to float precision
        assert p3_psnr < 45  # visible loss
        assert puppies_psnr > p3_psnr + 40


class TestStorageBehaviour:
    def test_psp_stores_entropy_coded_bytes(self):
        source = load_image("pascal", 2)
        image = CoefficientImage.from_array(source.array, quality=75)
        session = SharingSession("owner")
        roi = RegionOfInterest("r", Rect(0, 0, 16, 16))
        session.share("img", image, [roi])
        stored = session.psp.stored("img")
        assert stored.size_bytes == session.psp.storage_size("img")
        # Small ROI at medium privacy: modest overhead vs the original.
        original = encoded_size_bytes(image, optimize=True)
        assert stored.size_bytes < 2.0 * original

    def test_perturbed_upload_survives_codec_roundtrip(self):
        """The PSP stores *bytes*; decryption must work on the decoded
        copy, not on in-memory state."""
        source = load_image("pascal", 2)
        image = CoefficientImage.from_array(source.array, quality=75)
        session = SharingSession("owner")
        roi = RegionOfInterest("r", Rect(8, 8, 24, 24))
        session.share("img", image, [roi], grants={"bob": [roi.matrix_id]})
        assert session.view("bob", "img").coefficients_equal(image)


class TestAttackResilienceEndToEnd:
    def test_sift_attack_on_stored_upload(self):
        source = load_image("inria", 1)
        image = CoefficientImage.from_array(source.array, quality=75)
        session = SharingSession("owner")
        by, bx = image.blocks_shape
        roi = RegionOfInterest(
            "whole", Rect(0, 0, by * 8, bx * 8),
            PrivacySettings.for_level(PrivacyLevel.MEDIUM),
        )
        session.share("img", image, [roi])
        stored_pixels = session.view_public("img").to_array()
        result = sift_attack(source.array, stored_pixels)
        assert result.n_matched <= 0.15 * max(result.n_original, 1)
