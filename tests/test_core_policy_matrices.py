"""Privacy policy (Table IV / Algorithm 3) and private-matrix tests."""

import numpy as np
import pytest

from repro.core.matrices import PrivateKey, PrivateMatrix
from repro.core.policy import (
    DEFAULT_PRIVACY,
    PrivacyLevel,
    PrivacySettings,
    ac_secure_bits,
    dc_secure_bits,
    range_matrix,
    total_secure_bits,
)
from repro.util.errors import KeyMismatchError, ReproError
from repro.util.rng import rng_from_key


class TestPrivacySettings:
    def test_table_iv_mapping(self):
        low = PrivacySettings.for_level(PrivacyLevel.LOW)
        medium = PrivacySettings.for_level(PrivacyLevel.MEDIUM)
        high = PrivacySettings.for_level(PrivacyLevel.HIGH)
        assert (low.min_range, low.n_perturbed) == (1, 1)
        assert (medium.min_range, medium.n_perturbed) == (32, 8)
        assert (high.min_range, high.n_perturbed) == (2048, 64)

    def test_default_is_medium(self):
        assert DEFAULT_PRIVACY == PrivacySettings.for_level(
            PrivacyLevel.MEDIUM
        )
        assert DEFAULT_PRIVACY.level_name == "medium"

    def test_custom_level_name(self):
        assert PrivacySettings(16, 4).level_name == "custom"

    def test_validation(self):
        with pytest.raises(ReproError):
            PrivacySettings(0, 1)
        with pytest.raises(ReproError):
            PrivacySettings(3, 1)  # not a power of two
        with pytest.raises(ReproError):
            PrivacySettings(1, 0)
        with pytest.raises(ReproError):
            PrivacySettings(1, 65)


class TestRangeMatrix:
    def test_low_perturbs_dc_only(self):
        q = range_matrix(PrivacySettings.for_level(PrivacyLevel.LOW))
        assert q[0] == 2048
        assert (q[1:] == 1).all()

    def test_medium_halving_sequence(self):
        q = range_matrix(PrivacySettings.for_level(PrivacyLevel.MEDIUM))
        assert q[:8].tolist() == [2048, 1024, 512, 256, 128, 64, 32, 32]
        assert (q[8:] == 1).all()

    def test_high_full_range_everywhere(self):
        q = range_matrix(PrivacySettings.for_level(PrivacyLevel.HIGH))
        assert (q == 2048).all()

    def test_floor_at_min_range(self):
        q = range_matrix(PrivacySettings(min_range=256, n_perturbed=16))
        assert q[:16].min() == 256
        assert (q[16:] == 1).all()

    def test_monotone_nonincreasing_over_perturbed_prefix(self):
        q = range_matrix(PrivacySettings(min_range=8, n_perturbed=32))
        prefix = q[:32]
        assert (np.diff(prefix) <= 0).all()


class TestSecureBits:
    def test_dc_bits_are_704(self):
        # Section VI-A: 11 bits x 64 entries of P_DC.
        assert dc_secure_bits() == 704

    def test_levels_strictly_ordered(self):
        bits = [
            total_secure_bits(PrivacySettings.for_level(level))
            for level in (
                PrivacyLevel.LOW,
                PrivacyLevel.MEDIUM,
                PrivacyLevel.HIGH,
            )
        ]
        assert bits[0] < bits[1] < bits[2]

    def test_every_level_beats_nist_256(self):
        for level in PrivacyLevel:
            assert total_secure_bits(PrivacySettings.for_level(level)) >= 256

    def test_ac_bits_from_algorithm3(self):
        # The values Algorithm 3 actually yields (see DESIGN.md §5).
        assert ac_secure_bits(PrivacySettings.for_level(PrivacyLevel.LOW)) == 0
        assert (
            ac_secure_bits(PrivacySettings.for_level(PrivacyLevel.MEDIUM))
            == 50
        )
        assert (
            ac_secure_bits(PrivacySettings.for_level(PrivacyLevel.HIGH))
            == 693
        )


class TestPrivateMatrix:
    def test_generation_in_range(self):
        m = PrivateMatrix.generate(rng_from_key("t"))
        assert m.values.shape == (64,)
        assert m.values.min() >= -1024 and m.values.max() <= 1023

    def test_normalized_range(self):
        m = PrivateMatrix.generate(rng_from_key("t2"))
        assert m.normalized.min() >= 0 and m.normalized.max() <= 2047

    def test_normalization_consistent_mod_2048(self):
        m = PrivateMatrix(np.arange(-32, 32))
        assert ((m.normalized - m.values) % 2048 == 0).all()

    def test_out_of_range_rejected(self):
        values = np.zeros(64, dtype=np.int64)
        values[5] = 1024
        with pytest.raises(ReproError):
            PrivateMatrix(values)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ReproError):
            PrivateMatrix(np.zeros(63, dtype=np.int64))

    def test_equality_and_hash(self):
        a = PrivateMatrix(np.arange(64) - 32)
        b = PrivateMatrix(np.arange(64) - 32)
        assert a == b
        assert hash(a) == hash(b)

    def test_as_block_shape(self):
        assert PrivateMatrix.generate(
            rng_from_key("t3")
        ).as_block().shape == (8, 8)


class TestPrivateKey:
    def test_serialize_roundtrip(self):
        key = PrivateKey.generate("matrix-7", rng_from_key("k"))
        rebuilt = PrivateKey.deserialize(key.serialize())
        assert rebuilt.matrix_id == key.matrix_id
        assert rebuilt.p_dc == key.p_dc
        assert rebuilt.p_ac == key.p_ac

    def test_from_seed_material_deterministic(self):
        a = PrivateKey.from_seed_material("m", "shared-secret")
        b = PrivateKey.from_seed_material("m", "shared-secret")
        assert a.p_dc == b.p_dc and a.p_ac == b.p_ac

    def test_size_accounting(self):
        key = PrivateKey.generate("ab", rng_from_key("k2"))
        # 2 + 2 id bytes + ceil(2 * 64 * 11 / 8) = 4 + 176.
        assert key.serialized_size_bytes() == 4 + 176

    def test_require_id(self):
        key = PrivateKey.generate("m1", rng_from_key("k3"))
        key.require_id("m1")
        with pytest.raises(KeyMismatchError):
            key.require_id("m2")


class TestFinerGrainedLevels:
    """settings_for_target_bits — the paper's 'future work' extension."""

    def test_zero_target_is_dc_only(self):
        from repro.core.policy import settings_for_target_bits

        settings = settings_for_target_bits(0)
        assert settings.n_perturbed == 1  # DC only

    def test_target_met_with_minimal_k(self):
        from repro.core.policy import ac_secure_bits, settings_for_target_bits

        for target in (1, 10, 25, 50, 100, 300, 693):
            settings = settings_for_target_bits(target)
            assert ac_secure_bits(settings) >= target
            # Minimality in K: one fewer perturbed coefficient cannot
            # reach the target even at the widest range.
            if settings.n_perturbed > 1:
                from repro.core.policy import PrivacySettings

                smaller = PrivacySettings(2048, settings.n_perturbed - 1)
                assert ac_secure_bits(smaller) < target

    def test_monotone_in_target(self):
        from repro.core.policy import settings_for_target_bits

        ks = [
            settings_for_target_bits(t).n_perturbed
            for t in (0, 20, 60, 200, 500)
        ]
        assert ks == sorted(ks)

    def test_unreachable_target_rejected(self):
        from repro.core.policy import settings_for_target_bits
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            settings_for_target_bits(694)
        with pytest.raises(ReproError):
            settings_for_target_bits(-1)

    def test_custom_settings_round_trip_protection(self, noise_image):
        from repro.core.keys import generate_private_key
        from repro.core.perturb import perturb_regions
        from repro.core.policy import settings_for_target_bits
        from repro.core.reconstruct import reconstruct_regions
        from repro.core.roi import RegionOfInterest
        from repro.util.rect import Rect

        settings = settings_for_target_bits(128)
        roi = RegionOfInterest(
            "r", Rect(8, 8, 24, 24), settings, scheme="puppies-c"
        )
        key = generate_private_key(roi.matrix_id, "o")
        perturbed, public = perturb_regions(
            noise_image, [roi], {roi.matrix_id: key}
        )
        recovered = reconstruct_regions(
            perturbed, public, {roi.matrix_id: key}
        )
        assert recovered.coefficients_equal(noise_image)
