"""Bounded quantile sketches: accuracy, determinism, merge, state.

The acceptance bar from the telemetry PR: a histogram series must hold
O(1) memory under a 100k-observation soak while reporting p50/p99
within 5% of the exact values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.core import Histogram, Registry
from repro.obs.sketch import DEFAULT_RESERVOIR_SIZE, ReservoirSketch


class TestReservoirBasics:
    def test_empty(self):
        sketch = ReservoirSketch()
        assert sketch.count == 0
        assert sketch.total == 0.0
        assert sketch.quantile(0.5) == 0.0
        assert sketch.dropped == 0

    def test_below_capacity_is_exact(self):
        sketch = ReservoirSketch(capacity=64)
        values = [float(v) for v in range(50)]
        for value in values:
            sketch.add(value)
        assert sorted(sketch.samples) == values
        assert sketch.dropped == 0
        assert sketch.quantile(0.0) == 0.0
        assert sketch.quantile(1.0) == 49.0

    def test_moments_are_exact_regardless_of_sampling(self):
        sketch = ReservoirSketch(capacity=8)
        values = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0]
        for value in values:
            sketch.add(value)
        assert sketch.count == len(values)
        assert sketch.total == pytest.approx(sum(values))
        assert sketch.min_value == 1.0
        assert sketch.max_value == 89.0
        assert sketch.mean == pytest.approx(sum(values) / len(values))
        assert sketch.dropped == len(values) - 8

    def test_quantile_bounds_validated(self):
        sketch = ReservoirSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(-0.1)
        with pytest.raises(ValueError):
            sketch.quantile(1.1)

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            ReservoirSketch(capacity=0)


class TestSoak:
    def test_memory_stays_bounded_and_quantiles_accurate(self):
        """100k observations: O(1) retained, p50/p99 within 5% exact."""
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=2.0, sigma=0.6, size=100_000)
        sketch = ReservoirSketch(seed=7)
        for value in values:
            sketch.add(float(value))
        assert len(sketch.samples) == DEFAULT_RESERVOIR_SIZE
        assert sketch.count == 100_000
        assert sketch.dropped == 100_000 - DEFAULT_RESERVOIR_SIZE
        for q in (0.5, 0.99):
            exact = float(np.quantile(values, q))
            estimate = sketch.quantile(q)
            assert abs(estimate - exact) / exact < 0.05, (q, exact, estimate)

    def test_histogram_series_memory_is_o1_under_soak(self):
        registry = Registry(enabled=True)
        for index in range(100_000):
            registry.observe("soak_ms", float(index % 977))
        (histogram,) = [
            h for h in registry.histograms() if h.name == "soak_ms"
        ]
        assert histogram.count == 100_000
        assert len(histogram.values) <= DEFAULT_RESERVOIR_SIZE
        assert histogram.values_dropped == 100_000 - len(histogram.values)
        # The streaming sum is exact even though samples aged out.
        assert histogram.sum == pytest.approx(
            sum(float(i % 977) for i in range(100_000))
        )

    def test_histogram_quantile_tracks_exact(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(scale=10.0, size=50_000)
        histogram = Histogram("lat_ms", {})
        for value in values:
            histogram.observe(float(value))
        for q in (0.5, 0.99):
            exact = float(np.quantile(values, q))
            assert abs(histogram.quantile(q) - exact) / exact < 0.05


class TestDeterminism:
    def test_same_seed_same_samples(self):
        a = ReservoirSketch(capacity=32, seed=11)
        b = ReservoirSketch(capacity=32, seed=11)
        for value in range(1000):
            a.add(float(value))
            b.add(float(value))
        assert a.samples == b.samples

    def test_histogram_seed_derived_from_series_key(self):
        # Two registries observing the same series pick the same samples
        # — traces stay comparable run-to-run.
        first, second = Registry(enabled=True), Registry(enabled=True)
        for registry in (first, second):
            for value in range(5000):
                registry.observe("x_ms", float(value), shard="a")
        (ha,) = first.histograms()
        (hb,) = second.histograms()
        assert ha.values == hb.values


class TestMerge:
    def test_merge_into_empty_copies(self):
        a = ReservoirSketch(capacity=16, seed=1)
        b = ReservoirSketch(capacity=16, seed=2)
        for value in range(10):
            b.add(float(value))
        a.merge(b)
        assert a.count == 10
        assert sorted(a.samples) == sorted(b.samples)

    def test_merge_preserves_exact_moments(self):
        a = ReservoirSketch(capacity=8, seed=1)
        b = ReservoirSketch(capacity=8, seed=2)
        for value in range(100):
            a.add(float(value))
        for value in range(100, 300):
            b.add(float(value) * 2.0)
        total = a.total + b.total
        count = a.count + b.count
        a.merge(b)
        assert a.count == count
        assert a.total == pytest.approx(total)
        assert a.min_value == 0.0
        assert a.max_value == 598.0
        assert len(a.samples) <= 8

    def test_merged_quantiles_reasonable(self):
        rng = np.random.default_rng(5)
        left = rng.normal(100.0, 10.0, size=20_000)
        right = rng.normal(100.0, 10.0, size=20_000)
        a = ReservoirSketch(seed=5)
        b = ReservoirSketch(seed=6)
        for value in left:
            a.add(float(value))
        for value in right:
            b.add(float(value))
        a.merge(b)
        exact = float(np.quantile(np.concatenate([left, right]), 0.5))
        assert abs(a.quantile(0.5) - exact) / exact < 0.05


class TestState:
    def test_state_roundtrip(self):
        sketch = ReservoirSketch(capacity=16, seed=9)
        for value in range(100):
            sketch.add(float(value))
        restored = ReservoirSketch.from_state(sketch.state(), seed=9)
        assert restored.count == sketch.count
        assert restored.total == pytest.approx(sketch.total)
        assert restored.samples == sketch.samples
        assert restored.quantile(0.5) == sketch.quantile(0.5)

    def test_state_is_json_safe(self):
        import json

        sketch = ReservoirSketch(capacity=4)
        sketch.add(1.5)
        assert json.loads(json.dumps(sketch.state())) == sketch.state()
