"""Edge cases of the five-number summary used by benches and repro.obs."""

import pytest

from repro.util.stats import SummaryStats, summarize


def test_summarize_empty_raises():
    with pytest.raises(ValueError):
        summarize([])


def test_summarize_single_value():
    stats = summarize([3.0])
    assert stats.count == 1
    assert stats.mean == 3.0
    assert stats.median == 3.0
    assert stats.std == 0.0
    assert stats.min == 3.0
    assert stats.max == 3.0


def test_summarize_constant_sequence():
    stats = summarize([7.5] * 10)
    assert stats.count == 10
    assert stats.mean == 7.5
    assert stats.median == 7.5
    assert stats.std == 0.0
    assert stats.min == stats.max == 7.5


def test_summarize_known_values():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.mean == 2.5
    assert stats.median == 2.5
    assert stats.min == 1.0
    assert stats.max == 4.0
    assert stats.std > 0.0


def test_row_renders_five_cells():
    stats = summarize([1.0, 2.0, 3.0])
    row = stats.row()
    cells = row.split()
    assert len(cells) == 5
    assert cells == ["2.00", "2.00", "0.82", "1.00", "3.00"]


def test_row_custom_format():
    stats = SummaryStats(
        mean=1.0, median=1.0, std=0.0, min=1.0, max=1.0, count=1
    )
    assert "1.000" in stats.row("{:.3f}")
