"""Cross-process telemetry: deltas, the collector, prometheus, SLOs.

Everything here is in-process — the socket path is covered by
``tests/test_cluster_telemetry.py``; these tests pin down the merge
semantics the wire rides on.
"""

from __future__ import annotations

import pytest

from repro.obs.core import Registry
from repro.obs.distributed import (
    TELEMETRY_VERSION,
    TelemetryCollector,
    TelemetryDelta,
    collect_delta,
    decode_telemetry,
    encode_telemetry,
)
from repro.obs.export import export_prometheus, span_record
from repro.obs.slo import (
    SloPolicy,
    evaluate_metrics,
    evaluate_registry,
)
from repro.util.errors import IntegrityError


def _worker_registry() -> Registry:
    registry = Registry(enabled=True)
    with registry.span("worker.get", image_id="img-1"):
        pass
    registry.counter("rpc.requests", op="get")
    registry.observe("rpc.bytes", 512.0)
    return registry


class TestDeltaWire:
    def test_roundtrip(self):
        delta = collect_delta(_worker_registry(), "w0")
        decoded = decode_telemetry(encode_telemetry(delta))
        assert decoded.source == "w0"
        assert decoded.epoch_unix == pytest.approx(delta.epoch_unix)
        assert decoded.spans == delta.spans
        assert decoded.counters == delta.counters
        assert decoded.histograms == delta.histograms
        assert decoded.spans_recorded == 1

    def test_collect_drains(self):
        registry = _worker_registry()
        first = collect_delta(registry, "w0")
        second = collect_delta(registry, "w0")
        assert len(first.spans) == 1
        assert second.spans == []  # spans ship exactly once
        # Metrics are absolute snapshots, so they appear in both.
        assert second.counters == first.counters
        assert registry.spans_recorded == 1  # cumulative survives drain

    def test_garbage_rejected(self):
        with pytest.raises(IntegrityError):
            decode_telemetry(b"not zlib at all")
        blob = bytearray(encode_telemetry(collect_delta(
            _worker_registry(), "w0"
        )))
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(IntegrityError):
            decode_telemetry(bytes(blob))

    def test_version_mismatch_rejected(self):
        import json
        import zlib

        blob = zlib.compress(json.dumps(
            {"version": TELEMETRY_VERSION + 1}
        ).encode("utf-8"))
        with pytest.raises(IntegrityError):
            decode_telemetry(blob)


class TestCollectorParenting:
    def test_native_client_pass_through(self):
        """A worker span parents directly onto the local client span."""
        target = Registry(enabled=True)
        client_id = 0xAB
        with target.span("cluster.get") as parent:
            parent_id = parent.span_id

        worker = Registry(enabled=True)
        with worker.span("worker.get") as child:
            child.trace_id = client_id
            child.remote_parent = parent_id

        collector = TelemetryCollector(target)
        collector.bind_native_client(client_id)
        merged = collector.merge_delta(collect_delta(worker, "w0"))
        assert merged == 1

        spans = {span.span_id: span for span in target.spans()}
        (worker_span,) = [
            span for span in spans.values() if span.name == "worker.get"
        ]
        assert worker_span.parent_id == parent_id
        assert spans[parent_id].name == "cluster.get"
        assert worker_span.tags["worker"] == "w0"
        assert worker_span.process == "worker:w0"

    def test_two_hop_via_merged_child_records(self):
        """Loadgen shape: child client spans merge first, worker spans
        then resolve through the (client_id, span_id) correlation map —
        even though the child's ids collide with the target's."""
        target = Registry(enabled=True)
        with target.span("unrelated"):
            pass

        child = Registry(enabled=True)
        child_client_id = 0xC1
        with child.span("cluster.get", image_id="img-2") as span:
            child_span_id = span.span_id

        worker = Registry(enabled=True)
        with worker.span("worker.get") as span:
            span.trace_id = child_client_id
            span.remote_parent = child_span_id

        collector = TelemetryCollector(target)
        collector.merge_span_records(
            [span_record(s) for s in child.drain_spans()],
            client_id=child_client_id,
            epoch_unix=child.epoch_unix,
            process="loadgen:0",
        )
        collector.merge_delta(collect_delta(worker, "w1"))

        spans = list(target.spans())
        (get_span,) = [s for s in spans if s.name == "cluster.get"]
        (worker_span,) = [s for s in spans if s.name == "worker.get"]
        assert worker_span.parent_id == get_span.span_id
        assert get_span.process == "loadgen:0"
        assert collector.orphaned_spans == 0

    def test_within_batch_parent_remapped(self):
        target = Registry(enabled=True)
        source = Registry(enabled=True)
        with source.span("outer"):
            with source.span("inner"):
                pass
        collector = TelemetryCollector(target)
        collector.merge_delta(collect_delta(source, "w0"))
        spans = {span.span_id: span for span in target.spans()}
        (inner,) = [s for s in spans.values() if s.name == "inner"]
        assert spans[inner.parent_id].name == "outer"

    def test_unresolvable_remote_parent_becomes_orphan_root(self):
        target = Registry(enabled=True)
        worker = Registry(enabled=True)
        with worker.span("worker.get") as span:
            span.trace_id = 0x999  # nobody registered this client
            span.remote_parent = 12345
        collector = TelemetryCollector(target)
        collector.merge_delta(collect_delta(worker, "w0"))
        (merged,) = target.spans()
        assert merged.parent_id is None
        assert collector.orphaned_spans == 1

    def test_epoch_alignment_shifts_timestamps(self):
        target = Registry(enabled=True)
        worker = Registry(enabled=True)
        with worker.span("worker.get"):
            pass
        delta = collect_delta(worker, "w0")
        # Pretend the worker booted 2 s after the target.
        delta.epoch_unix = target.epoch_unix + 2.0
        original = delta.spans[0]["start_ms"]
        TelemetryCollector(target).merge_delta(delta)
        (merged,) = target.spans()
        assert merged.start_ms == pytest.approx(
            original + 2000.0, abs=1e-6
        )

    def test_metrics_land_tagged_and_absolute(self):
        target = Registry(enabled=True)
        worker = _worker_registry()
        collector = TelemetryCollector(target)
        collector.merge_delta(collect_delta(worker, "w0"))
        # Second merge overwrites, not doubles (idempotent snapshots).
        worker.counter("rpc.requests", op="get")
        collector.merge_delta(collect_delta(worker, "w0"))
        (counter,) = [
            c for c in target.counters() if c.name == "rpc.requests"
        ]
        assert counter.tags["worker"] == "w0"
        assert counter.value == 2.0
        (histogram,) = [
            h for h in target.histograms() if h.name == "rpc.bytes"
        ]
        assert histogram.tags["worker"] == "w0"
        assert histogram.count == 1


class TestPrometheus:
    def test_exposition_contains_all_families(self):
        registry = Registry(enabled=True)
        with registry.span("cluster.get"):
            pass
        registry.counter("cluster.loadgen.requests", amount=5)
        registry.observe("rpc_ms", 1.5)
        text = export_prometheus(registry)
        assert "# TYPE puppies_cluster_loadgen_requests counter" in text
        assert "puppies_cluster_loadgen_requests 5" in text
        assert 'puppies_rpc_ms_bucket{le="+Inf"} 1' in text
        assert "puppies_rpc_ms_count 1" in text
        assert 'puppies_span_wall_ms{span="cluster.get",quantile="0.99"}' \
            in text
        assert "puppies_obs_dropped_spans 0" in text

    def test_label_escaping_and_name_sanitization(self):
        registry = Registry(enabled=True)
        registry.counter("weird.name-here", path='a"b\\c')
        text = export_prometheus(registry)
        assert "puppies_weird_name_here" in text
        assert '\\"' in text and "\\\\" in text

    def test_writes_target(self, tmp_path):
        registry = Registry(enabled=True)
        registry.counter("x")
        target = tmp_path / "metrics.prom"
        text = export_prometheus(registry, str(target))
        assert target.read_text() == text


class TestSlo:
    def test_empty_policy_checks_nothing(self):
        report = evaluate_metrics(SloPolicy(), p99_ms=1e9, errors=10)
        assert report.ok
        assert report.checks == []
        assert "nothing checked" in report.lines()[-1]

    def test_scalar_gate_passes_and_fails(self):
        policy = SloPolicy(max_p99_ms=100.0, max_error_rate=0.01)
        good = evaluate_metrics(
            policy, p99_ms=50.0, requests=1000, errors=5
        )
        assert good.ok
        bad = evaluate_metrics(
            policy, p99_ms=500.0, requests=1000, errors=50
        )
        assert not bad.ok
        assert {check.name for check in bad.violations} == {
            "p99_ms", "error_rate",
        }
        assert any("FAIL" in line for line in bad.lines())

    def test_registry_gate_reads_loadgen_counters(self):
        registry = Registry(enabled=True)
        with registry.span("cluster.get"):
            pass
        registry.counter("cluster.loadgen.requests", amount=100)
        registry.counter("cluster.loadgen.errors", amount=7)
        registry.counter("cluster.under_replicated", amount=2)
        policy = SloPolicy(
            max_error_rate=0.05, max_under_replicated=0,
            max_dropped_spans=0,
        )
        report = evaluate_registry(policy, registry)
        assert not report.ok
        names = {check.name for check in report.violations}
        assert names == {"error_rate", "under_replicated"}

    def test_registry_gate_counts_remote_dropped_spans(self):
        registry = Registry(enabled=True)
        registry.set_counter("telemetry.dropped_spans", 3, worker="w0")
        report = evaluate_registry(
            SloPolicy(max_dropped_spans=0), registry
        )
        assert not report.ok
        (check,) = report.violations
        assert check.observed == 3

    def test_registry_p99_falls_back_to_histograms(self):
        registry = Registry(enabled=True)
        for value in (1.0, 2.0, 100.0):
            registry.observe("cluster.get", value)
        report = evaluate_registry(
            SloPolicy(max_p99_ms=50.0, latency_source="cluster.get"),
            registry,
        )
        assert not report.ok
