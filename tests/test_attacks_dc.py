"""DC brute-force attack: breaks PuPPIeS-N, fails against PuPPIeS-B."""

import numpy as np
import pytest

from repro.attacks.dc_attack import (
    dc_bruteforce_attack,
    dc_recovery_quality,
)
from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.rect import Rect


@pytest.fixture(scope="module")
def natural_image():
    return CoefficientImage.from_array(
        load_image("pascal", 1).array, quality=75
    )


def _protect(image, scheme):
    by, bx = image.blocks_shape
    roi = RegionOfInterest(
        "whole",
        Rect(0, 0, by * 8, bx * 8),
        PrivacySettings.for_level(PrivacyLevel.MEDIUM),
        scheme=scheme,
    )
    key = generate_private_key(roi.matrix_id, "dc-victim")
    perturbed, public = perturb_regions(image, [roi], {roi.matrix_id: key})
    return perturbed, public, key


class TestDcBruteForce:
    def test_breaks_naive_scheme(self, natural_image):
        perturbed, public, _key = _protect(natural_image, "puppies-n")
        result = dc_bruteforce_attack(perturbed, public.regions[0])
        # The DC plane is recovered up to a constant brightness offset —
        # the mosaic content of Fig. 13a is fully exposed.
        corr, _mae = dc_recovery_quality(
            natural_image, result, public.regions[0]
        )
        assert corr > 0.95
        # And the winning candidate's plane has no wrap discontinuities:
        # its values span a plausible DC range, not the full wrap range.
        assert np.ptp(result.recovered_dc) < 1500

    def test_fails_against_base_scheme(self, natural_image):
        perturbed, public, _key = _protect(natural_image, "puppies-b")
        result = dc_bruteforce_attack(perturbed, public.regions[0])
        corr, mae = dc_recovery_quality(
            natural_image, result, public.regions[0]
        )
        # 64 independent DC entries cannot be matched by one value.
        assert corr < 0.5
        assert mae > 50

    def test_fails_against_compression_scheme(self, natural_image):
        perturbed, public, _key = _protect(natural_image, "puppies-c")
        result = dc_bruteforce_attack(perturbed, public.regions[0])
        corr, _mae = dc_recovery_quality(
            natural_image, result, public.regions[0]
        )
        assert corr < 0.5

    def test_every_candidate_leaks_or_scores_worse(self, natural_image):
        """The attack's core invariant against -N: total variation is
        invariant to constant offsets, so every candidate either (a)
        induces no wraps — in which case its DC plane is the true plane
        plus a constant, i.e. the content leaks regardless — or (b)
        induces wraps and scores no better than the winner."""
        perturbed, public, _key = _protect(natural_image, "puppies-n")
        region = public.regions[0]
        result = dc_bruteforce_attack(perturbed, region)
        br = region.block_rect
        truth = natural_image.channels[0][
            br.y : br.y2, br.x : br.x2, 0, 0
        ].astype(np.float64)
        dc = perturbed.channels[0][
            br.y : br.y2, br.x : br.x2, 0, 0
        ].astype(np.int64)
        for candidate in range(0, 2048, 97):
            plane = ((dc - candidate + 1024) % 2048) - 1024
            score = float(
                np.abs(np.diff(plane, axis=0)).sum()
                + np.abs(np.diff(plane, axis=1)).sum()
            )
            corr = float(
                np.corrcoef(truth.ravel(), plane.ravel())[0, 1]
            )
            assert corr > 0.99 or score >= result.smoothness
