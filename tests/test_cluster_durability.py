"""Process-level durability tests: kill -9, restart, recover from disk.

The acceptance gates from the issue live here:

* a kill-9'd worker restarted on the same ``--data-dir`` serves every
  record committed before the kill, bit-identical (stored CRC
  verified), with zero failed reads in a loadgen ``--check`` run;
* a fault-injected partial segment write (the torn tail a crash
  mid-``put`` leaves) is truncated on restart while committed records
  survive CRC-clean;
* the background scrub daemon detects injected silent corruption
  within a sweep and repairs it, exchanging digests — not records —
  for converged ranges.

Everything spawns real worker processes over real sockets — marked
``cluster`` (``make durability-quick`` runs this file).
"""

from __future__ import annotations

import glob
import os
import struct
import time
import zlib

import pytest

from repro.cluster import ClusterSupervisor, run_cluster_loadgen
from repro.cluster.storage import (
    RECORD_FRAME,
    SEGMENT_SUFFIX,
    iter_segment_records,
)

pytestmark = pytest.mark.cluster

NO_SLEEP = lambda _s: None  # noqa: E731


def _put_blobs(client, n, prefix="blob"):
    ids = []
    for index in range(n):
        image_id = f"{prefix}-{index:03d}"
        payload = (f"payload-{index}".encode() * 50)
        assert client.put(image_id, payload, b"{}")
        ids.append(image_id)
    return ids


def _segments(data_dir, worker_id):
    return sorted(
        glob.glob(
            os.path.join(data_dir, worker_id, f"seg-*{SEGMENT_SUFFIX}")
        )
    )


def _poll(predicate, deadline_s=15.0, step_s=0.1):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step_s)
    return predicate()


class TestCrashRecovery:
    def test_killed_worker_recovers_all_committed_records(self, tmp_path):
        data_dir = str(tmp_path)
        with ClusterSupervisor(
            n_workers=3, data_dir=data_dir, replication=2
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 12)
                originals = {
                    image_id: client.get(image_id).record
                    for image_id in ids
                }
                sup.kill_worker("w1")
                assert not sup.alive()["w1"]
                sup.restart_worker("w1")
                assert sup.alive()["w1"]
                # Every pre-kill record is served bit-identical, with
                # the *stored* writer CRC verifying — including by the
                # restarted worker itself for the ids it owns.
                for image_id in ids:
                    result = client.get(image_id)
                    assert result.clean
                    assert result.record == originals[image_id]
                stats = client.ping("w1", storage_stats=True)["storage"]
                assert stats["storage"]["recovered_records"] > 0
                # drain_hints has nothing to do: disk recovery already
                # brought w1's shards back.
                owned_by_w1 = [
                    image_id for image_id in ids
                    if "w1" in client.ring.preference(image_id, 2)
                ]
                if owned_by_w1:
                    direct = client.fetch_tree("w1", for_worker="w1")
                    assert direct.total == len(owned_by_w1)

    def test_restart_passes_loadgen_check_gate(self, tmp_path):
        data_dir = str(tmp_path)
        with ClusterSupervisor(
            n_workers=3, data_dir=data_dir, replication=2
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 8)
            sup.kill_worker("w2")
            sup.restart_worker("w2")
            report = run_cluster_loadgen(
                sup.endpoints(), ids,
                processes=2, requests=40, scrub_ratio=0.0,
            )
            assert report.failed_reads == 0
            assert report.requests == 40

    def test_partial_segment_write_truncated_on_restart(self, tmp_path):
        """Fault-injected torn tail: kill mid-put leaves a half frame."""
        data_dir = str(tmp_path)
        with ClusterSupervisor(
            n_workers=2, data_dir=data_dir, replication=2
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 6)
                originals = {
                    image_id: client.get(image_id).record
                    for image_id in ids
                }
                sup.kill_worker("w0")
                # Simulate the kill having landed mid-append: a frame
                # promising more bytes than ever reached the disk, then
                # a prefix of a body.
                segments = _segments(data_dir, "w0")
                assert segments
                body = b"\x01" + b"partial record body"
                with open(segments[-1], "ab") as handle:
                    handle.write(
                        RECORD_FRAME.pack(
                            len(body) + 5000,
                            zlib.crc32(body) & 0xFFFFFFFF,
                        )
                    )
                    handle.write(body)
                torn_size = os.path.getsize(segments[-1])
                sup.restart_worker("w0")
                stats = client.ping("w0", storage_stats=True)["storage"]
                assert stats["storage"]["torn_bytes_truncated"] > 0
                assert stats["storage"]["lost_records"] == 0
                assert os.path.getsize(segments[-1]) < torn_size
                for image_id in ids:
                    result = client.get(image_id)
                    assert result.clean
                    assert result.record == originals[image_id]

    def test_segments_on_disk_hold_crc_framed_records(self, tmp_path):
        data_dir = str(tmp_path)
        with ClusterSupervisor(
            n_workers=2, data_dir=data_dir, replication=2
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 4)
        # Fleet is down; read the logs cold, like a forensics pass.
        seen = set()
        for worker_id in ("w0", "w1"):
            for path in _segments(data_dir, worker_id):
                for image_id, record in iter_segment_records(path):
                    assert record.verify()
                    seen.add(image_id)
        assert seen == set(ids)

    def test_double_restart_is_stable(self, tmp_path):
        data_dir = str(tmp_path)
        with ClusterSupervisor(
            n_workers=2, data_dir=data_dir, replication=2
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 5)
                for _round in range(2):
                    sup.kill_worker("w0")
                    sup.restart_worker("w0")
                for image_id in ids:
                    assert client.get(image_id).clean


class TestBackgroundScrub:
    def test_scrub_detects_and_repairs_injected_rot(self, tmp_path):
        """The anti-entropy acceptance gate, end to end over processes:
        silent rot is found within a sweep and healed from a replica,
        while converged ranges cost digests, not record bytes."""
        with ClusterSupervisor(
            n_workers=3, data_dir=str(tmp_path), replication=2,
            chaos_ops=True, scrub_interval_s=0.2,
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 10)
                victim_id = ids[0]
                victim_worker = client.ring.preference(victim_id, 2)[0]

                def scrub_stats():
                    ping = client.ping(victim_worker, storage_stats=True)
                    return ping["storage"]["scrub"]

                # Let at least one clean sweep land: trees converge and
                # nothing but digests crosses the wire.
                assert _poll(lambda: scrub_stats()["sweeps"] >= 1)
                baseline = scrub_stats()
                assert baseline["trees_converged"] >= 1
                assert baseline["record_bytes"] == 0
                assert baseline["digest_bytes"] > 0

                client.corrupt_stored(victim_worker, victim_id)
                assert _poll(lambda: scrub_stats()["repairs"] >= 1)
                after = scrub_stats()
                assert after["rot_detected"] >= 1
                # The repair fetched ONE record; converged ranges still
                # cost only digest bytes (record_bytes stays bounded by
                # the single repaired record, far below digest traffic
                # growth across sweeps).
                assert after["record_bytes"] > 0
                assert after["digest_bytes"] > baseline["digest_bytes"]
                # And the victim's stored copy is clean again: fetch it
                # directly (no failover masking) and re-verify the CRC.
                from repro.cluster.scrub import peer_request
                from repro.cluster.wire import (
                    MSG_GET,
                    pack_id,
                    unpack_record_response,
                )

                host, port = sup.endpoints()[victim_worker]

                def victim_copy_clean():
                    record = unpack_record_response(
                        peer_request(
                            host, port, MSG_GET, pack_id(victim_id)
                        )
                    )
                    return record.verify()

                assert _poll(victim_copy_clean)

    def test_scrub_daemon_rearms_after_restart(self, tmp_path):
        with ClusterSupervisor(
            n_workers=2, data_dir=str(tmp_path), replication=2,
            scrub_interval_s=5.0,
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                def running(worker):
                    ping = client.ping(worker, storage_stats=True)
                    return ping["storage"]["scrub_running"]

                assert running("w0") and running("w1")
                sup.kill_worker("w0")
                sup.restart_worker("w0")
                assert running("w0")  # restart_worker re-pushed peers

    def test_scrub_refills_worker_that_lost_its_disk(self, tmp_path):
        """Wipe a dead worker's data dir entirely: the tree diff must
        refill the ids it co-owns from its peers."""
        data_dir = str(tmp_path)
        with ClusterSupervisor(
            n_workers=2, data_dir=data_dir, replication=2,
            scrub_interval_s=0.2,
        ) as sup:
            with sup.client(sleep=NO_SLEEP) as client:
                ids = _put_blobs(client, 6)
                sup.kill_worker("w1")
                for path in _segments(data_dir, "w1"):
                    os.remove(path)
                os.remove(os.path.join(data_dir, "w1", "COMMIT"))
                sup.restart_worker("w1")

                def w1_items():
                    return client.ping("w1")["items"]

                # With RF=2 over 2 workers, w1 co-owns every id.
                assert _poll(lambda: w1_items() == len(ids))
                for image_id in ids:
                    assert client.get(image_id).clean
