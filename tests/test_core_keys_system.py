"""Key exchange, keyring and end-to-end sharing-session tests."""

import numpy as np
import pytest

from repro.core.keys import (
    DH_PRIME,
    DhKeyPair,
    KeyRing,
    SecureChannel,
    generate_private_key,
    shared_secret,
)
from repro.core.matrices import PrivateKey
from repro.core.roi import RegionOfInterest
from repro.core.system import SharingSession
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import KeyMismatchError, ReproError
from repro.util.rect import Rect
from repro.util.rng import rng_from_key

pytestmark = pytest.mark.keys


class TestDiffieHellman:
    def test_shared_secret_agrees(self):
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        assert shared_secret(alice.private, bob.public) == shared_secret(
            bob.private, alice.public
        )

    def test_different_pairs_different_secrets(self):
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        eve = DhKeyPair.generate(rng_from_key("e"))
        assert shared_secret(alice.private, bob.public) != shared_secret(
            eve.private, bob.public
        )


class TestSecureChannel:
    def test_key_delivery_roundtrip(self):
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        sender_side = SecureChannel.establish(alice, bob.public)
        receiver_side = SecureChannel.establish(bob, alice.public)
        key = generate_private_key("m1", "alice")
        blob = sender_side.send_key(key)
        received = receiver_side.receive_key("m1", blob)
        assert received.p_dc == key.p_dc and received.p_ac == key.p_ac

    def test_blob_is_not_plaintext(self):
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        channel = SecureChannel.establish(alice, bob.public)
        key = generate_private_key("m1", "alice")
        assert channel.send_key(key) != key.serialize()

    def test_wrong_channel_cannot_decrypt(self):
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        eve = DhKeyPair.generate(rng_from_key("e"))
        sender_side = SecureChannel.establish(alice, bob.public)
        eve_side = SecureChannel.establish(eve, alice.public)
        key = generate_private_key("m1", "alice")
        blob = sender_side.send_key(key)
        with pytest.raises(Exception):
            eve_side.receive_key("m1", blob)


class _ScriptedRng:
    """A stand-in rng whose ``bytes()`` returns a scripted sequence."""

    def __init__(self, outputs):
        self._outputs = list(outputs)

    def bytes(self, n):
        out = self._outputs.pop(0)
        assert len(out) == n
        return out


class TestKeyChannelHardening:
    """Regressions for the PR-10 key-channel bugfix sweep."""

    def test_mac_length_framing_blocks_boundary_forgery(self):
        """Sliding bytes across the id/ciphertext boundary must change
        the tag: ("m1", c) and ("m", b"1" + c) MAC'd identically before
        the fields were length-prefixed."""
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        channel = SecureChannel.establish(alice, bob.public)
        assert channel._mac("m1", b"cipher") != channel._mac("m", b"1cipher")
        assert channel._mac("ab", b"c") != channel._mac("a", b"bc")

    def test_forged_blob_under_shifted_id_rejected(self):
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        sender_side = SecureChannel.establish(alice, bob.public)
        receiver_side = SecureChannel.establish(bob, alice.public)
        blob = sender_side.send_key(generate_private_key("m1", "alice"))
        ciphertext, tag = blob[:-16], blob[-16:]
        forged = b"1" + ciphertext + tag
        with pytest.raises(KeyMismatchError):
            receiver_side.receive_key("m", forged)

    @pytest.mark.parametrize(
        "bad_public", [0, 1, DH_PRIME - 1, DH_PRIME, DH_PRIME + 5, -3]
    )
    def test_degenerate_dh_publics_rejected(self, bad_public):
        alice = DhKeyPair.generate(rng_from_key("a"))
        with pytest.raises(KeyMismatchError, match="degenerate|range"):
            shared_secret(alice.private, bad_public)
        with pytest.raises(KeyMismatchError, match="degenerate|range"):
            SecureChannel.establish(alice, bad_public)

    def test_private_exponent_rejection_sampled(self):
        """Out-of-range draws are redrawn, not folded with a biased
        modulo; in-range draws are used verbatim."""
        wanted = 123456789
        rng = _ScriptedRng([
            b"\xff" * 32,                  # 2**256 - 1: out of range
            (0).to_bytes(32, "big"),       # zero: out of range
            wanted.to_bytes(32, "big"),    # in range: accepted as-is
        ])
        pair = DhKeyPair.generate(rng)
        assert pair.private == wanted

    def test_generated_exponents_in_range(self):
        for seed in range(8):
            pair = DhKeyPair.generate(rng_from_key(f"range/{seed}"))
            assert 1 <= pair.private <= DH_PRIME - 2

    def test_keyring_miss_suppresses_keyerror_chain(self):
        try:
            KeyRing()["missing"]
        except KeyMismatchError as error:
            assert error.__suppress_context__
            assert error.__cause__ is None
        else:
            pytest.fail("expected KeyMismatchError")


class TestKeyRing:
    def test_add_get_contains(self):
        ring = KeyRing()
        key = generate_private_key("m1", "o")
        ring.add(key)
        assert "m1" in ring and ring.get("m1") is key
        assert ring["m1"] is key
        assert len(ring) == 1

    def test_duplicate_identical_ok_conflict_rejected(self):
        ring = KeyRing()
        ring.add(generate_private_key("m1", "o"))
        ring.add(generate_private_key("m1", "o"))  # same material
        with pytest.raises(KeyMismatchError):
            ring.add(generate_private_key("m1", "other-owner"))

    def test_missing_key_raises(self):
        with pytest.raises(KeyMismatchError):
            KeyRing()["nope"]

    def test_subset(self):
        keys = [generate_private_key(f"m{i}", "o") for i in range(3)]
        ring = KeyRing(keys)
        sub = ring.subset(["m0", "m2", "m9"])
        assert sorted(sub.matrix_ids()) == ["m0", "m2"]

    def test_serialized_size_scales_linearly(self):
        sizes = []
        for n in (1, 4, 8):
            ring = KeyRing(
                generate_private_key(f"k{i}", "o") for i in range(n)
            )
            sizes.append(ring.serialized_size_bytes())
        assert sizes[1] == 4 * sizes[0]
        assert sizes[2] == 8 * sizes[0]


class TestSharingSession:
    def _photo(self):
        gen = np.random.default_rng(5)
        return gen.integers(0, 256, (64, 96, 3), dtype=np.uint8)

    def test_alice_bob_workflow(self):
        session = SharingSession("alice")
        photo = self._photo()
        roi = RegionOfInterest("face", Rect(16, 24, 24, 32))
        session.share(
            "img", photo, [roi], grants={"bob": ["matrix-face"]}
        )
        reference = CoefficientImage.from_array(photo, quality=75)
        assert session.view("bob", "img").coefficients_equal(reference)
        assert not session.view_public("img").coefficients_equal(reference)

    def test_personalized_multi_receiver(self):
        # The Fig. 3 Einstein/Chaplin scenario: two regions, two receivers.
        session = SharingSession("owner")
        photo = self._photo()
        left = RegionOfInterest("left", Rect(16, 8, 16, 16))
        right = RegionOfInterest("right", Rect(16, 64, 16, 16))
        session.share(
            "img",
            photo,
            [left, right],
            grants={
                "einstein-friend": ["matrix-left"],
                "chaplin-friend": ["matrix-right"],
                "bestie": ["matrix-left", "matrix-right"],
            },
        )
        reference = CoefficientImage.from_array(photo, quality=75)
        ef = session.view("einstein-friend", "img")
        cf = session.view("chaplin-friend", "img")
        bestie = session.view("bestie", "img")
        assert bestie.coefficients_equal(reference)
        # Each one-key receiver sees their region but not the other.
        assert np.array_equal(
            ef.channels[0][2:4, 1:3], reference.channels[0][2:4, 1:3]
        )
        assert not np.array_equal(
            ef.channels[0][2:4, 8:10], reference.channels[0][2:4, 8:10]
        )
        assert np.array_equal(
            cf.channels[0][2:4, 8:10], reference.channels[0][2:4, 8:10]
        )
        assert not np.array_equal(
            cf.channels[0][2:4, 1:3], reference.channels[0][2:4, 1:3]
        )

    def test_receiver_without_grant_sees_nothing(self):
        session = SharingSession("alice")
        photo = self._photo()
        roi = RegionOfInterest("face", Rect(16, 24, 24, 32))
        session.share("img", photo, [roi])
        stranger = session.add_receiver("stranger")
        view = stranger.fetch(session.psp, "img")
        reference = CoefficientImage.from_array(photo, quality=75)
        assert not view.coefficients_equal(reference)

    def test_duplicate_image_id_rejected(self):
        session = SharingSession("alice")
        photo = self._photo()
        roi = RegionOfInterest("r", Rect(0, 0, 16, 16))
        session.share("img", photo, [roi])
        with pytest.raises(ReproError):
            session.share("img", photo, [roi])

    def test_duplicate_receiver_rejected(self):
        session = SharingSession("alice")
        session.add_receiver("bob")
        with pytest.raises(ReproError):
            session.add_receiver("bob")

    def test_transformed_fetch_through_session_parts(self):
        from repro.transforms import Scale

        session = SharingSession("alice")
        photo = self._photo()
        roi = RegionOfInterest("face", Rect(16, 24, 24, 32))
        session.share(
            "img", photo, [roi], grants={"bob": ["matrix-face"]}
        )
        bob = session.receivers["bob"]
        transform = Scale(32, 48)
        recovered = bob.fetch_transformed(session.psp, "img", transform)
        reference = CoefficientImage.from_array(photo, quality=75)
        truth = transform.apply(reference.to_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-7)

    def test_recompressed_fetch_through_session(self):
        session = SharingSession("alice")
        photo = self._photo()
        roi = RegionOfInterest("face", Rect(16, 24, 24, 32))
        session.share(
            "img", photo, [roi], grants={"bob": ["matrix-face"]}
        )
        bob = session.receivers["bob"]
        recovered = bob.fetch_recompressed(session.psp, "img", quality=40)
        from repro.transforms import Recompress

        reference = CoefficientImage.from_array(photo, quality=75)
        truth = Recompress(40).apply_to_image(reference)
        for r, t in zip(recovered.channels, truth.channels):
            assert np.abs(r.astype(int) - t.astype(int)).max() <= 1


class TestChannelIntegrity:
    def _channel_pair(self):
        alice = DhKeyPair.generate(rng_from_key("a"))
        bob = DhKeyPair.generate(rng_from_key("b"))
        return (
            SecureChannel.establish(alice, bob.public),
            SecureChannel.establish(bob, alice.public),
        )

    def test_tampered_blob_rejected(self):
        sender, receiver = self._channel_pair()
        key = generate_private_key("m1", "alice")
        blob = bytearray(sender.send_key(key))
        blob[3] ^= 0xFF
        with pytest.raises(KeyMismatchError):
            receiver.receive_key("m1", bytes(blob))

    def test_truncated_blob_rejected(self):
        sender, receiver = self._channel_pair()
        key = generate_private_key("m1", "alice")
        blob = sender.send_key(key)
        with pytest.raises(KeyMismatchError):
            receiver.receive_key("m1", blob[:8])

    def test_blob_bound_to_matrix_id(self):
        sender, receiver = self._channel_pair()
        key = generate_private_key("m1", "alice")
        blob = sender.send_key(key)
        with pytest.raises(KeyMismatchError):
            receiver.receive_key("m2", blob)

    def test_delivery_log(self):
        sender, _receiver = self._channel_pair()
        sender.send_key(generate_private_key("m1", "alice"))
        sender.send_key(generate_private_key("m2", "alice"))
        assert sender.delivered == ["m1", "m2"]
