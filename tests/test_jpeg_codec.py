"""Codec round-trip and file-size accounting tests."""

import numpy as np
import pytest

from repro.jpeg.codec import JpegCodec, decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.filesize import encoded_size_bytes
from repro.util.errors import CodecError


class TestRoundTrip:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_color_roundtrip_exact(self, noise_image, optimize):
        data = encode_image(noise_image, optimize=optimize)
        assert decode_image(data).coefficients_equal(noise_image)

    @pytest.mark.parametrize("optimize", [False, True])
    def test_gray_roundtrip_exact(self, rng, optimize):
        gray = rng.integers(0, 256, (40, 56), dtype=np.uint8)
        image = CoefficientImage.from_array(gray, quality=60)
        data = encode_image(image, optimize=optimize)
        assert decode_image(data).coefficients_equal(image)

    def test_unaligned_dimensions_roundtrip(self, unaligned_rgb):
        image = CoefficientImage.from_array(unaligned_rgb, quality=75)
        assert decode_image(encode_image(image)).coefficients_equal(image)

    def test_smooth_image_roundtrip(self, smooth_image):
        data = encode_image(smooth_image, optimize=True)
        assert decode_image(data).coefficients_equal(smooth_image)

    def test_extreme_coefficients_roundtrip(self):
        # Synthetic coefficients at the wrap boundary (+-1024 range).
        channels = [np.zeros((2, 3, 8, 8), dtype=np.int32)]
        channels[0][0, 0, 0, 0] = -1024
        channels[0][1, 2, 7, 7] = 1023
        channels[0][0, 1, 0, 1] = -1024
        tables = [np.ones((8, 8), dtype=np.int32)]
        image = CoefficientImage(channels, tables, 16, 24, "gray")
        assert decode_image(encode_image(image)).coefficients_equal(image)

    def test_bad_magic_rejected(self):
        with pytest.raises(CodecError):
            decode_image(b"NOPE" + b"\x00" * 64)

    def test_quality_changes_fidelity(self, smooth_rgb):
        low = CoefficientImage.from_array(smooth_rgb, quality=20)
        high = CoefficientImage.from_array(smooth_rgb, quality=95)
        err_low = np.abs(
            low.to_array().astype(int) - smooth_rgb.astype(int)
        ).mean()
        err_high = np.abs(
            high.to_array().astype(int) - smooth_rgb.astype(int)
        ).mean()
        assert err_high < err_low

    def test_decode_pixels_close_to_source(self, smooth_rgb):
        image = CoefficientImage.from_array(smooth_rgb, quality=85)
        err = np.abs(
            image.to_array().astype(int) - smooth_rgb.astype(int)
        ).mean()
        assert err < 3.0


class TestFileSizeAccounting:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_estimator_matches_encoder_exactly(self, rng, optimize):
        for _ in range(3):
            arr = rng.integers(0, 256, (33, 47, 3), dtype=np.uint8)
            image = CoefficientImage.from_array(arr, quality=70)
            assert encoded_size_bytes(image, optimize=optimize) == len(
                encode_image(image, optimize=optimize)
            )

    def test_estimator_matches_on_smooth_image(self, smooth_image):
        for optimize in (False, True):
            assert encoded_size_bytes(smooth_image, optimize=optimize) == len(
                encode_image(smooth_image, optimize=optimize)
            )

    def test_estimator_matches_on_gray(self, rng):
        gray = rng.integers(0, 256, (25, 25), dtype=np.uint8)
        image = CoefficientImage.from_array(gray, quality=50)
        for optimize in (False, True):
            assert encoded_size_bytes(image, optimize=optimize) == len(
                encode_image(image, optimize=optimize)
            )

    def test_optimized_no_larger_than_default_on_natural(self, smooth_image):
        assert encoded_size_bytes(smooth_image, optimize=True) <= (
            encoded_size_bytes(smooth_image, optimize=False)
        )

    def test_smooth_compresses_better_than_noise(
        self, smooth_image, noise_image
    ):
        smooth_rate = encoded_size_bytes(smooth_image) / (
            smooth_image.height * smooth_image.width
        )
        noise_rate = encoded_size_bytes(noise_image) / (
            noise_image.height * noise_image.width
        )
        assert smooth_rate < noise_rate


class TestCoefficientImage:
    def test_zigzag_channel_roundtrip(self, noise_image):
        copy = noise_image.copy()
        zz = copy.zigzag_channel(1)
        copy.set_zigzag_channel(1, zz)
        assert copy.coefficients_equal(noise_image)

    def test_zigzag_shape_validation(self, noise_image):
        with pytest.raises(CodecError):
            noise_image.copy().set_zigzag_channel(
                0, np.zeros((3, 64), dtype=np.int32)
            )

    def test_copy_is_deep(self, noise_image):
        copy = noise_image.copy()
        copy.channels[0][0, 0, 0, 0] += 1
        assert not copy.coefficients_equal(noise_image)

    def test_geometry_properties(self, unaligned_rgb):
        image = CoefficientImage.from_array(unaligned_rgb)
        h, w = unaligned_rgb.shape[:2]
        by, bx = image.blocks_shape
        assert by * 8 >= h and bx * 8 >= w
        assert image.padded_shape == (by * 8, bx * 8)
        assert image.n_blocks == by * bx

    def test_channel_shape_mismatch_rejected(self):
        with pytest.raises(CodecError):
            CoefficientImage(
                [
                    np.zeros((2, 2, 8, 8), dtype=np.int32),
                    np.zeros((2, 3, 8, 8), dtype=np.int32),
                ],
                [np.ones((8, 8), dtype=np.int32)] * 2,
                16,
                16,
                "ycbcr",
            )

    def test_padded_planes_extend_cropped_planes(self, unaligned_rgb):
        image = CoefficientImage.from_array(unaligned_rgb)
        cropped = image.to_sample_planes()
        padded = image.to_padded_sample_planes()
        for c, p in zip(cropped, padded):
            assert p.shape == image.padded_shape
            assert np.allclose(p[: c.shape[0], : c.shape[1]], c)

    def test_to_array_shape_matches_input(self, unaligned_rgb):
        image = CoefficientImage.from_array(unaligned_rgb)
        assert image.to_array().shape == unaligned_rgb.shape
