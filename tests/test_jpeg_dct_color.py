"""DCT, colour transform and block layout tests."""

import numpy as np
import pytest

from repro.jpeg import color, dct


class TestColor:
    def test_round_trip_identity(self, rng):
        img = rng.uniform(0, 255, (20, 30, 3))
        back = color.ycbcr_to_rgb(color.rgb_to_ycbcr(img))
        assert np.allclose(back, img, atol=1e-9)

    def test_gray_input_maps_to_luma(self):
        gray = np.full((4, 4, 3), 100.0)
        ycc = color.rgb_to_ycbcr(gray)
        assert np.allclose(ycc[..., 0], 100.0)
        assert np.allclose(ycc[..., 1], 128.0)
        assert np.allclose(ycc[..., 2], 128.0)

    def test_luma_weights_are_bt601(self):
        red = np.zeros((1, 1, 3))
        red[..., 0] = 255
        assert color.rgb_to_ycbcr(red)[0, 0, 0] == pytest.approx(0.299 * 255)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            color.rgb_to_ycbcr(np.zeros((4, 4)))
        with pytest.raises(ValueError):
            color.ycbcr_to_rgb(np.zeros((4, 4, 2)))

    def test_to_uint8_clamps(self):
        arr = np.array([[-5.0, 300.0, 127.4]])
        assert color.to_uint8(arr).tolist() == [[0, 255, 127]]


class TestDct:
    def test_basis_is_orthonormal(self):
        c = dct.DCT_BASIS
        assert np.allclose(c @ c.T, np.eye(8), atol=1e-12)

    def test_forward_inverse_identity(self, rng):
        blocks = rng.uniform(-128, 128, (5, 7, 8, 8))
        back = dct.inverse_dct_blocks(dct.forward_dct_blocks(blocks))
        assert np.allclose(back, blocks, atol=1e-9)

    def test_dc_coefficient_is_scaled_mean(self):
        block = np.full((1, 8, 8), 10.0)
        coeffs = dct.forward_dct_blocks(block)
        assert coeffs[0, 0, 0] == pytest.approx(80.0)  # 8 * mean
        assert np.allclose(coeffs[0].flatten()[1:], 0.0, atol=1e-9)

    def test_linearity(self, rng):
        a = rng.uniform(-50, 50, (3, 3, 8, 8))
        b = rng.uniform(-50, 50, (3, 3, 8, 8))
        lhs = dct.forward_dct_blocks(a + b)
        rhs = dct.forward_dct_blocks(a) + dct.forward_dct_blocks(b)
        assert np.allclose(lhs, rhs, atol=1e-9)

    def test_blockify_unblockify_roundtrip(self, rng):
        plane = rng.uniform(0, 255, (24, 40))
        assert np.array_equal(dct.unblockify(dct.blockify(plane)), plane)

    def test_blockify_rejects_unaligned(self):
        with pytest.raises(ValueError):
            dct.blockify(np.zeros((10, 16)))

    def test_blockify_layout_is_raster(self):
        plane = np.arange(16 * 16, dtype=np.float64).reshape(16, 16)
        blocks = dct.blockify(plane)
        assert blocks[0, 1, 0, 0] == plane[0, 8]
        assert blocks[1, 0, 0, 0] == plane[8, 0]

    def test_pad_to_blocks_replicates_edges(self):
        plane = np.arange(6, dtype=np.float64).reshape(2, 3)
        padded = dct.pad_to_blocks(plane)
        assert padded.shape == (8, 8)
        assert padded[7, 0] == plane[1, 0]
        assert padded[0, 7] == plane[0, 2]

    def test_plane_roundtrip_with_padding(self, rng):
        plane = rng.uniform(0, 255, (13, 21))
        coeffs = dct.forward_dct_plane(plane)
        back = dct.inverse_dct_plane(coeffs, 13, 21)
        assert np.allclose(back, plane, atol=1e-9)
