"""Tests for the concurrent serving layer (``repro.service``)."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.psp import Psp
from repro.core.roi import RegionOfInterest
from repro.robustness import FaultInjector, FaultyPsp, profile_from_name
from repro.service import (
    DecodeCache,
    PspService,
    ShardedStore,
    SingleFlightLru,
    canonical_params,
)
from repro.service import frontend as frontend_module
from repro.transforms import Rotate90, Scale
from repro.util.errors import (
    DeadlineExceededError,
    ReproError,
    ServiceError,
    ServiceOverloadedError,
    TransientError,
)
from repro.util.rect import Rect


@pytest.fixture(scope="module")
def protected(noise_image):
    """One perturbed image + its public data, reused across the module."""
    roi = RegionOfInterest("r", Rect(8, 8, 24, 24))
    key = generate_private_key(roi.matrix_id, "service-owner")
    perturbed, public = perturb_regions(
        noise_image, [roi], {roi.matrix_id: key}
    )
    return perturbed, public


@pytest.fixture()
def psp(protected):
    perturbed, public = protected
    psp = Psp()
    psp.upload("img", perturbed, public)
    return psp


@pytest.fixture()
def service(protected):
    perturbed, public = protected
    service = PspService(workers=4)
    service.upload("img", perturbed, public)
    yield service
    service.close()


class TestShardedStore:
    def test_psp_roundtrip_on_sharded_store(self, protected):
        perturbed, public = protected
        psp = Psp(store=ShardedStore(n_shards=4))
        psp.upload("img", perturbed, public)
        assert psp.download("img").coefficients_equal(perturbed)
        assert psp.image_ids() == ["img"]
        assert psp.storage_size("img") > 0
        with pytest.raises(ReproError):
            psp.upload("img", perturbed, public)
        with pytest.raises(ReproError):
            psp.download("nope")

    def test_put_new_is_insert_iff_absent(self):
        store = ShardedStore(n_shards=3)
        assert store.put_new("a", "item-a")
        assert not store.put_new("a", "item-a2")
        assert store.get("a") == "item-a"
        assert "a" in store and "b" not in store
        with pytest.raises(KeyError):
            store.get("b")

    def test_ids_and_len_cover_all_shards(self):
        store = ShardedStore(n_shards=4)
        names = [f"img-{i}" for i in range(20)]
        for name in names:
            store.put_new(name, name)
        assert sorted(store.ids()) == sorted(names)
        assert len(store) == 20
        assert sum(store.shard_sizes()) == 20
        # CRC32 sharding actually spreads the keys around.
        assert sum(1 for size in store.shard_sizes() if size > 0) > 1

    def test_shard_index_stable_and_in_range(self):
        store = ShardedStore(n_shards=7)
        for name in ("a", "img-123", "z" * 100):
            index = store.shard_index(name)
            assert 0 <= index < 7
            assert index == store.shard_index(name)

    def test_single_shard_degenerates_to_dict(self):
        store = ShardedStore(n_shards=1)
        store.put_new("x", 1)
        assert store.get("x") == 1

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ReproError):
            ShardedStore(n_shards=0)

    def test_concurrent_distinct_uploads_never_lost(self):
        store = ShardedStore(n_shards=4)
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def worker(tid):
            barrier.wait()
            for k in range(per_thread):
                assert store.put_new(f"t{tid}-{k}", (tid, k))

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(store) == n_threads * per_thread

    def test_concurrent_duplicate_upload_wins_once(self):
        store = ShardedStore()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        outcomes = []

        def worker():
            barrier.wait()
            outcomes.append(store.put_new("same", "item"))

        threads = [
            threading.Thread(target=worker) for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(outcomes) == 1 and len(store) == 1


class TestSingleFlightLru:
    def test_hit_returns_defensive_copy(self, noise_image):
        cache = DecodeCache(max_bytes=1 << 20)
        first = cache.get_or_load("a", lambda: noise_image.copy())
        second = cache.get_or_load("a", lambda: noise_image.copy())
        assert cache.hits == 1 and cache.misses == 1
        assert first.coefficients_equal(second)
        assert first is not second
        # Mutating a returned copy must not corrupt the cached master.
        first.channels[0][:] = 0
        third = cache.get_or_load("a", lambda: noise_image.copy())
        assert third.coefficients_equal(noise_image)

    def test_byte_budget_evicts_lru(self):
        one_kb = np.zeros(1024, dtype=np.uint8)
        cache = SingleFlightLru(max_bytes=2048, name="test")
        cache.get_or_load("a", lambda: one_kb)
        cache.get_or_load("b", lambda: one_kb)
        # Touch "a" so "b" is now least recently used.
        cache.get_or_load("a", lambda: one_kb)
        cache.get_or_load("c", lambda: one_kb)
        assert cache.evictions == 1
        assert cache.current_bytes <= cache.max_bytes
        calls = []
        cache.get_or_load("a", lambda: calls.append("a") or one_kb)
        cache.get_or_load("b", lambda: calls.append("b") or one_kb)
        assert calls == ["b"]  # "a" survived, "b" was the victim

    def test_oversize_value_served_but_not_cached(self):
        big = np.zeros(4096, dtype=np.uint8)
        cache = SingleFlightLru(max_bytes=1024, name="test")
        out = cache.get_or_load("big", lambda: big)
        assert np.array_equal(out, big)
        assert cache.oversize == 1 and len(cache) == 0

    def test_zero_budget_disables_caching(self):
        cache = SingleFlightLru(max_bytes=0, name="test")
        calls = []
        for _ in range(3):
            cache.get_or_load("k", lambda: calls.append(1) or np.zeros(8))
        assert len(calls) == 3 and not cache.enabled

    def test_loader_error_propagates_and_is_not_cached(self):
        cache = SingleFlightLru(max_bytes=1024, name="test")
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) == 1:
                raise TransientError("first try fails")
            return np.zeros(8)

        with pytest.raises(TransientError):
            cache.get_or_load("k", flaky)
        out = cache.get_or_load("k", flaky)
        assert np.array_equal(out, np.zeros(8)) and len(attempts) == 2

    def test_single_flight_one_load_for_k_concurrent_requests(self):
        cache = SingleFlightLru(max_bytes=1 << 20, name="test")
        n_threads = 8
        loads = []
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads

        def slow_loader():
            loads.append(1)
            time.sleep(0.2)
            return np.arange(64)

        def worker(tid):
            barrier.wait()
            results[tid] = cache.get_or_load("cold", slow_loader)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(loads) == 1
        assert cache.singleflight_waits == n_threads - 1
        for result in results:
            assert np.array_equal(result, np.arange(64))
        # Waiters received copies, not the shared master.
        assert len({id(result) for result in results}) == n_threads

    def test_clear_drops_entries_only(self):
        cache = SingleFlightLru(max_bytes=1024, name="test")
        cache.get_or_load("a", lambda: np.zeros(8))
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.misses == 1  # stats survive

    def test_concurrent_faulty_loader_fails_leader_and_every_waiter(self):
        """One slow faulty leader: its error reaches all K callers, the
        flight is cleaned up, and the next call gets a fresh loader."""
        cache = SingleFlightLru(max_bytes=1 << 20, name="test")
        n_threads = 6
        loads = []
        barrier = threading.Barrier(n_threads)
        outcomes: list = [None] * n_threads

        def faulty_loader():
            loads.append(1)
            time.sleep(0.2)  # waiters pile up behind the flight
            raise TransientError(f"backend hiccup #{len(loads)}")

        def caller(tid):
            barrier.wait()
            try:
                outcomes[tid] = cache.get_or_load("cold", faulty_loader)
            except TransientError as error:
                outcomes[tid] = error

        threads = [
            threading.Thread(target=caller, args=(t,))
            for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Exactly one loader ran; every caller saw its failure.
        assert len(loads) == 1
        assert all(
            isinstance(outcome, TransientError)
            and "hiccup #1" in str(outcome)
            for outcome in outcomes
        )
        # Nothing cached, no flight leaked: a fresh call loads again.
        assert len(cache) == 0
        with pytest.raises(TransientError, match="hiccup #2"):
            cache.get_or_load("cold", faulty_loader)
        assert len(loads) == 2

    def test_waiters_on_distinct_keys_fail_independently(self):
        cache = SingleFlightLru(max_bytes=1 << 20, name="test")
        go = threading.Barrier(2)
        outcomes = {}

        def make_loader(key):
            def loader():
                time.sleep(0.1)
                if key == "bad":
                    raise TransientError("bad key")
                return np.arange(4)
            return loader

        def caller(key):
            go.wait()
            try:
                outcomes[key] = cache.get_or_load(key, make_loader(key))
            except TransientError as error:
                outcomes[key] = error

        threads = [
            threading.Thread(target=caller, args=(key,))
            for key in ("bad", "good")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert isinstance(outcomes["bad"], TransientError)
        assert np.array_equal(outcomes["good"], np.arange(4))


class TestCanonicalParams:
    def test_key_is_order_insensitive(self):
        assert canonical_params({"a": 1, "b": [2, 3]}) == canonical_params(
            {"b": [2, 3], "a": 1}
        )

    def test_different_params_different_keys(self):
        assert canonical_params({"turns": 1}) != canonical_params(
            {"turns": 2}
        )


class TestPspService:
    def test_download_matches_plain_psp(self, service, psp):
        expected = psp.download("img")
        cold = service.download("img")
        warm = service.download("img")
        assert cold.coefficients_equal(expected)
        assert warm.coefficients_equal(expected)
        assert service.decode_cache.hits >= 1

    def test_download_returns_defensive_copy(self, service, psp):
        first = service.download("img")
        first.channels[0][:] = 0
        assert service.download("img").coefficients_equal(
            psp.download("img")
        )

    def test_download_transformed_matches_plain_psp(self, service, psp):
        transform = Scale(24, 32)
        planes, public = service.download_transformed("img", transform)
        expected_planes, expected_public = psp.download_transformed(
            "img", transform
        )
        for got, want in zip(planes, expected_planes):
            np.testing.assert_array_equal(got, want)
        assert public.transform_params == expected_public.transform_params
        # Warm (cached derivative) result is bit-identical too.
        warm_planes, _ = service.download_transformed("img", transform)
        for got, want in zip(warm_planes, expected_planes):
            np.testing.assert_array_equal(got, want)

    def test_no_transform_params_bleed_across_requests(self, service):
        _planes, public_a = service.download_transformed(
            "img", Rotate90(1)
        )
        _planes, public_b = service.download_transformed(
            "img", Rotate90(2)
        )
        assert public_a.transform_params == Rotate90(1).to_params()
        assert public_b.transform_params == Rotate90(2).to_params()
        assert service.public_data("img").transform_params is None

    def test_download_lossless_matches_plain_psp_and_deepcopies_op(
        self, service, psp
    ):
        op = {"op": "crop", "y": 0, "x": 0, "h": 16, "w": 16}
        image, public = service.download_lossless("img", dict(op))
        expected, _ = psp.download_lossless("img", dict(op))
        assert image.coefficients_equal(expected)
        assert public.transform_params == op
        # Caller mutates its dict afterwards; the published record and
        # the cached derivative must not change.
        mutated = dict(op)
        image2, public2 = service.download_lossless("img", mutated)
        mutated["h"] = 8
        assert public2.transform_params == op
        assert image2.coefficients_equal(expected)

    def test_download_recompressed_matches_plain_psp(self, service, psp):
        got, public = service.download_recompressed("img", 30)
        expected, _ = psp.download_recompressed("img", 30)
        assert got.coefficients_equal(expected)
        assert public.transform_params == {
            "name": "recompress", "quality": 30,
        }

    def test_unknown_id_raises_repro_error(self, service):
        with pytest.raises(ReproError):
            service.download("nope")
        with pytest.raises(ReproError):
            service.download_transformed("nope", Rotate90(1))

    def test_metadata_passthrough(self, service, psp):
        assert service.image_ids() == ["img"]
        assert service.storage_size("img") == psp.storage_size("img")
        assert service.stored("img").encoded == psp.stored("img").encoded

    def test_invalid_workers_and_queue_cap_rejected(self):
        with pytest.raises(ReproError):
            PspService(workers=0)
        with pytest.raises(ReproError):
            PspService(workers=2, queue_cap=0)

    def test_closed_service_rejects_requests(self, protected):
        perturbed, public = protected
        service = PspService(workers=1)
        service.upload("img", perturbed, public)
        service.close()
        with pytest.raises(ServiceError):
            service.download("img")

    def test_service_single_flight_one_decode_per_k_cold_requests(
        self, protected, monkeypatch
    ):
        perturbed, public = protected
        decodes = []
        real_decode = frontend_module.decode_image

        def counting_decode(encoded):
            decodes.append(1)
            time.sleep(0.2)
            return real_decode(encoded)

        monkeypatch.setattr(
            frontend_module, "decode_image", counting_decode
        )
        n_clients = 4
        with PspService(workers=n_clients) as service:
            service.upload("img", perturbed, public)
            barrier = threading.Barrier(n_clients)
            results = [None] * n_clients

            def client(tid):
                barrier.wait()
                results[tid] = service.download("img")

            threads = [
                threading.Thread(target=client, args=(t,))
                for t in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert len(decodes) == 1
        for result in results:
            assert result.coefficients_equal(perturbed)

    def test_admission_control_sheds_load(self, protected, monkeypatch):
        perturbed, public = protected

        real_decode = frontend_module.decode_image
        release = threading.Event()
        started = threading.Event()

        def stalling_decode(encoded):
            started.set()
            release.wait(5.0)
            return real_decode(encoded)

        monkeypatch.setattr(
            frontend_module, "decode_image", stalling_decode
        )
        service = PspService(workers=1, queue_cap=1)
        try:
            service.upload("img", perturbed, public)
            blocker = threading.Thread(
                target=lambda: service.download("img"), daemon=True
            )
            blocker.start()
            assert started.wait(5.0)
            with pytest.raises(ServiceOverloadedError):
                service.download("img")
        finally:
            release.set()
            blocker.join(5.0)
            service.close()
        # The slot drains once the stalled request finishes.
        assert service.pending == 0

    def test_deadline_exceeded(self, protected, monkeypatch):
        perturbed, public = protected
        real_decode = frontend_module.decode_image

        def slow_decode(encoded):
            time.sleep(0.5)
            return real_decode(encoded)

        monkeypatch.setattr(frontend_module, "decode_image", slow_decode)
        with PspService(workers=1) as service:
            service.upload("img", perturbed, public)
            with pytest.raises(DeadlineExceededError):
                service.download("img", timeout=0.05)

    def test_duplicate_upload_rejected_through_service(
        self, service, protected
    ):
        perturbed, public = protected
        with pytest.raises(ReproError):
            service.upload("img", perturbed, public)


class TestServiceClose:
    def test_close_is_idempotent(self, protected):
        perturbed, public = protected
        service = PspService(workers=2)
        service.upload("img", perturbed, public)
        service.close()
        service.close()  # second close is a no-op, not an error
        service.close(drain=False)
        with pytest.raises(ServiceError):
            service.download("img")

    def test_close_drains_inflight_requests(self, protected, monkeypatch):
        perturbed, public = protected
        real_decode = frontend_module.decode_image
        started = threading.Event()

        def slow_decode(encoded):
            started.set()
            time.sleep(0.3)
            return real_decode(encoded)

        monkeypatch.setattr(frontend_module, "decode_image", slow_decode)
        service = PspService(workers=1)
        service.upload("img", perturbed, public)
        results = {}

        def client():
            results["image"] = service.download("img")

        thread = threading.Thread(target=client)
        thread.start()
        assert started.wait(5.0)
        service.close(drain=True)  # in-flight work completes
        thread.join(5.0)
        assert results["image"].coefficients_equal(perturbed)

    def test_close_without_drain_cancels_queued_requests(
        self, protected, monkeypatch
    ):
        perturbed, public = protected
        real_decode = frontend_module.decode_image
        release = threading.Event()
        started = threading.Event()

        def stalling_decode(encoded):
            started.set()
            release.wait(5.0)
            return real_decode(encoded)

        monkeypatch.setattr(
            frontend_module, "decode_image", stalling_decode
        )
        service = PspService(workers=1)
        # Both uploads happen while the pool is still free — uploads are
        # admitted through the same single worker the blocker stalls.
        service.upload("img", perturbed, public)
        service.upload("img2-queued", perturbed, public)
        errors = {}

        def blocker():
            try:
                service.download("img")
            except ServiceError as error:
                errors["blocker"] = error

        def queued():
            try:
                service.download("img2-queued")
            except ServiceError as error:
                errors["queued"] = error

        blocker_thread = threading.Thread(target=blocker, daemon=True)
        blocker_thread.start()
        assert started.wait(5.0)
        # A second request now sits in the executor queue behind the
        # stalled worker; close(drain=False) must cancel it with a
        # clear error, not hang waiting for it.
        queued_thread = threading.Thread(target=queued, daemon=True)
        queued_thread.start()
        while service.pending < 2:
            time.sleep(0.01)
        service.close(drain=False)
        queued_thread.join(5.0)
        assert not queued_thread.is_alive()
        assert "closed while" in str(errors["queued"])
        release.set()
        blocker_thread.join(5.0)

    def test_overload_error_carries_retry_after_hint(
        self, protected, monkeypatch
    ):
        perturbed, public = protected
        real_decode = frontend_module.decode_image
        release = threading.Event()
        started = threading.Event()

        def stalling_decode(encoded):
            started.set()
            release.wait(5.0)
            return real_decode(encoded)

        monkeypatch.setattr(
            frontend_module, "decode_image", stalling_decode
        )
        service = PspService(workers=1, queue_cap=1)
        try:
            service.upload("img", perturbed, public)
            blocker_thread = threading.Thread(
                target=lambda: service.download("img"), daemon=True
            )
            blocker_thread.start()
            assert started.wait(5.0)
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.download("img")
            # The shed request tells the client how long to back off —
            # a positive, bounded hint derived from observed latency.
            assert excinfo.value.retry_after is not None
            assert 0.0 < excinfo.value.retry_after <= 2.0
        finally:
            release.set()
            blocker_thread.join(5.0)
            service.close()


class TestServiceOverFaultyPsp:
    def test_transient_backend_errors_propagate_then_recover(
        self, protected
    ):
        """The service wraps FaultyPsp unchanged: transient faults pass
        through (they are never cached), and the first clean read
        populates the cache."""
        perturbed, public = protected
        inner = Psp()
        inner.upload("img", perturbed, public)
        faulty = FaultyPsp(
            inner, FaultInjector(profile_from_name("transient"))
        )
        with PspService(backend=faulty, workers=2) as service:
            for _ in range(2):
                with pytest.raises(TransientError):
                    service.download("img")
            recovered = service.download("img")
            assert recovered.coefficients_equal(perturbed)
            # Now cached: no further backend attempts needed.
            attempts_before = faulty.attempts("img")
            service.download("img")
            assert faulty.attempts("img") == attempts_before

    def test_clean_profile_serves_identical_bytes(self, protected):
        perturbed, public = protected
        inner = Psp()
        inner.upload("img", perturbed, public)
        faulty = FaultyPsp(
            inner, FaultInjector(profile_from_name("none"))
        )
        with PspService(backend=faulty, workers=2) as service:
            assert service.download("img").coefficients_equal(perturbed)


class TestServiceObservability:
    def test_counters_and_spans_recorded(self, protected):
        perturbed, public = protected
        obs.configure(enabled=True, fresh=True)
        try:
            with PspService(workers=2) as service:
                service.upload("img", perturbed, public)
                service.download("img")
                service.download("img")
                service.download_transformed("img", Rotate90(1))
            registry = obs.get_registry()
            assert registry.counter_value(
                "service.cache.miss", cache="decode"
            ) == 1
            assert registry.counter_value(
                "service.cache.hit", cache="decode"
            ) >= 1
            span_names = [span.name for span in registry.spans()]
            assert "service.request" in span_names
            ops = {
                span.tags.get("op")
                for span in registry.spans()
                if span.name == "service.request"
            }
            assert {"upload", "download", "download_transformed"} <= ops
            depth = [
                h for h in registry.histograms()
                if h.name == "service.queue_depth"
            ]
            assert depth and depth[0].count >= 4
        finally:
            obs.configure(enabled=False, fresh=True)
