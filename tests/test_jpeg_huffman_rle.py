"""Huffman coding and run-length symbol layer tests."""

import numpy as np
import pytest

from repro.jpeg import rle
from repro.jpeg.huffman import (
    DEFAULT_AC_TABLE,
    DEFAULT_DC_TABLE,
    EOB,
    MAX_CODE_LENGTH,
    ZRL,
    HuffmanTable,
    build_table,
    optimized_tables,
)
from repro.util.bitio import BitReader, BitWriter
from repro.util.errors import CodecError


class TestHuffmanTable:
    def test_canonical_codes_are_prefix_free(self):
        table = build_table({0: 10, 1: 7, 2: 3, 3: 1, 4: 1})
        codes = {
            symbol: format(table._codes[symbol][0], f"0{length}b")
            for symbol, (_, length) in table._codes.items()
        }
        values = list(codes.values())
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert not a.startswith(b) and not b.startswith(a)

    def test_frequent_symbols_get_short_codes(self):
        table = build_table({0: 1000, 1: 10, 2: 1})
        assert table.code_length(0) <= table.code_length(1)
        assert table.code_length(1) <= table.code_length(2)

    def test_single_symbol_table(self):
        table = build_table({42: 5})
        assert table.code_length(42) == 1

    def test_length_limit_respected(self):
        # A Fibonacci-like frequency profile forces very deep trees.
        freqs = {}
        a, b = 1, 1
        for symbol in range(40):
            freqs[symbol] = a
            a, b = b, a + b
        table = build_table(freqs)
        assert max(length for _, length in table.lengths) <= MAX_CODE_LENGTH

    def test_encode_decode_symbol_stream(self, rng):
        table = build_table({s: int(f) for s, f in enumerate([50, 20, 5, 1])})
        symbols = rng.integers(0, 4, 200).tolist()
        writer = BitWriter()
        for s in symbols:
            table.encode_symbol(writer, s)
        reader = BitReader(writer.getvalue())
        decoded = [table.decode_symbol(reader) for _ in symbols]
        assert decoded == symbols

    def test_unknown_symbol_rejected(self):
        table = build_table({1: 1, 2: 1})
        with pytest.raises(CodecError):
            table.encode_symbol(BitWriter(), 99)

    def test_spec_roundtrip(self):
        table = build_table({s: 2**s for s in range(12)})
        counts, symbols = table.to_spec()
        rebuilt = HuffmanTable.from_spec(counts, symbols)
        assert rebuilt.lengths == table.lengths

    def test_spec_bytes_formula(self):
        table = build_table({0: 3, 1: 2, 2: 1})
        assert table.spec_bytes() == 16 + 2 + 3

    def test_empty_frequencies_rejected(self):
        with pytest.raises(CodecError):
            build_table({})

    def test_default_tables_cover_needed_symbols(self):
        for size in range(14):
            assert DEFAULT_DC_TABLE.code_length(size) > 0
        assert DEFAULT_AC_TABLE.code_length(EOB) > 0
        assert DEFAULT_AC_TABLE.code_length(ZRL) > 0
        for run in range(16):
            for size in range(1, 12):
                assert DEFAULT_AC_TABLE.code_length((run << 4) | size) > 0

    def test_default_ac_table_prefers_eob(self):
        eob_len = DEFAULT_AC_TABLE.code_length(EOB)
        rare_len = DEFAULT_AC_TABLE.code_length((15 << 4) | 11)
        assert eob_len < rare_len

    def test_optimized_tables_drop_unused_symbols(self):
        dc, ac = optimized_tables({0: 5, 3: 2}, {EOB: 10, 0x11: 4})
        assert set(dc.symbols) == {0, 3}
        assert set(ac.symbols) == {EOB, 0x11}


class TestMagnitudeCoding:
    @pytest.mark.parametrize("value", [-1024, -255, -1, 1, 2, 37, 1023])
    def test_roundtrip(self, value):
        size = rle.magnitude_category(value)
        bits = rle.encode_magnitude(value, size)
        assert rle.decode_magnitude(bits, size) == value

    def test_category_values(self):
        assert rle.magnitude_category(0) == 0
        assert rle.magnitude_category(1) == 1
        assert rle.magnitude_category(-1) == 1
        assert rle.magnitude_category(255) == 8
        assert rle.magnitude_category(-1024) == 11

    def test_vectorized_matches_scalar(self, rng):
        values = rng.integers(-1024, 1024, 500)
        vec = rle.magnitude_categories(values)
        scalar = [rle.magnitude_category(int(v)) for v in values]
        assert vec.tolist() == scalar

    def test_nonzero_in_size_zero_rejected(self):
        with pytest.raises(CodecError):
            rle.encode_magnitude(3, 0)


class TestAcSymbols:
    def test_all_zero_block_is_single_eob(self):
        symbols = list(rle.ac_symbols(np.zeros(63, dtype=np.int32)))
        assert symbols == [(EOB, 0)]

    def test_trailing_nonzero_has_no_eob(self):
        ac = np.zeros(63, dtype=np.int32)
        ac[62] = 5
        symbols = list(rle.ac_symbols(ac))
        assert symbols[-1][0] != EOB

    def test_long_run_emits_zrl(self):
        ac = np.zeros(63, dtype=np.int32)
        ac[40] = -3
        symbols = list(rle.ac_symbols(ac))
        zrls = [s for s, _ in symbols if s == ZRL]
        assert len(zrls) == 40 // 16
        run_symbol = symbols[len(zrls)][0]
        assert run_symbol >> 4 == 40 % 16

    def test_decode_inverts_encode(self, rng):
        for _ in range(25):
            ac = rng.integers(-40, 40, 63).astype(np.int32)
            ac[rng.random(63) < 0.7] = 0
            decoded = rle.decode_ac_block(iter(rle.ac_symbols(ac)))
            assert np.array_equal(decoded, ac)

    def test_wrong_length_rejected(self):
        with pytest.raises(CodecError):
            list(rle.ac_symbols(np.zeros(64, dtype=np.int32)))


class TestDcDifferences:
    def test_roundtrip(self, rng):
        dc = rng.integers(-1000, 1000, 50).astype(np.int64)
        diffs = rle.dc_differences(dc)
        assert np.array_equal(
            rle.dc_from_differences(diffs.tolist()), dc
        )

    def test_first_difference_is_absolute(self):
        diffs = rle.dc_differences(np.array([7, 9, 4], dtype=np.int64))
        assert diffs.tolist() == [7, 2, -5]
