"""Unit tests for the RPCF wire protocol and the consistent-hash ring.

No processes, no real sockets (socketpairs only) — these run in tier 1
alongside the serialization tests they mirror.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.cluster.ring import DEFAULT_VNODES, HashRing, ring_hash
from repro.cluster.wire import (
    FLAG_TRACE,
    HEADER,
    MAX_PAYLOAD,
    MSG_ERR,
    MSG_GET,
    MSG_OK,
    MSG_PUT,
    PING_EXTENDED,
    ShardRecord,
    TraceContext,
    decode_frame,
    encode_frame,
    pack_corrupt,
    pack_error,
    pack_id,
    pack_ids,
    pack_ping_response,
    pack_put,
    pack_scrub_response,
    pack_trace_ctx,
    read_frame,
    strip_trace,
    unpack_corrupt,
    unpack_error,
    unpack_id,
    unpack_ids,
    unpack_ping_response,
    unpack_put,
    unpack_scrub_response,
    unpack_trace_ctx,
    with_trace,
    write_frame,
)
from repro.util.errors import ClusterError, IntegrityError


class TestFrames:
    def test_roundtrip(self):
        frame = encode_frame(MSG_GET, b"hello cluster")
        assert decode_frame(frame) == (MSG_GET, b"hello cluster")

    def test_empty_payload_roundtrip(self):
        assert decode_frame(encode_frame(MSG_OK)) == (MSG_OK, b"")

    def test_every_flipped_bit_is_detected(self):
        frame = encode_frame(MSG_GET, b"abc")
        for byte_index in range(len(frame)):
            for bit in range(8):
                damaged = bytearray(frame)
                damaged[byte_index] ^= 1 << bit
                with pytest.raises(IntegrityError):
                    decode_frame(bytes(damaged))

    def test_truncated_frame_rejected(self):
        frame = encode_frame(MSG_GET, b"abcdef")
        for cut in range(1, len(frame)):
            with pytest.raises(IntegrityError):
                decode_frame(frame[:cut])

    def test_trailing_bytes_rejected(self):
        frame = encode_frame(MSG_GET, b"abc")
        with pytest.raises(IntegrityError):
            decode_frame(frame + b"x")

    def test_payload_cap_enforced_on_encode(self):
        with pytest.raises(ClusterError):
            encode_frame(MSG_PUT, b"\0" * (MAX_PAYLOAD + 1))

    def test_corrupted_length_field_cannot_trigger_huge_read(self):
        frame = bytearray(encode_frame(MSG_GET, b"abc"))
        # Overwrite the u32 length with an absurd value.
        frame[5:9] = (MAX_PAYLOAD + 1).to_bytes(4, "little")
        with pytest.raises(IntegrityError):
            decode_frame(bytes(frame))

    def test_crc_covers_type_byte(self):
        # Same payload, different type — swapping types must not pass.
        frame = bytearray(encode_frame(MSG_GET, b"abc"))
        frame[4] = MSG_PUT
        with pytest.raises(IntegrityError):
            decode_frame(bytes(frame))


class TestSocketFraming:
    def test_read_frame_roundtrip_and_clean_eof(self):
        left, right = socket.socketpair()
        try:
            write_frame(left, MSG_GET, b"payload")
            write_frame(left, MSG_OK, b"")
            left.close()
            assert read_frame(right) == (MSG_GET, b"payload")
            assert read_frame(right) == (MSG_OK, b"")
            assert read_frame(right) is None  # EOF at a frame boundary
        finally:
            right.close()

    def test_mid_frame_eof_is_connection_error(self):
        left, right = socket.socketpair()
        try:
            frame = encode_frame(MSG_GET, b"payload")
            left.sendall(frame[: HEADER.size + 3])
            left.close()
            with pytest.raises(ConnectionError):
                read_frame(right)
        finally:
            right.close()

    def test_large_frame_streams_in_chunks(self):
        blob = bytes(range(256)) * 4096  # 1 MiB
        left, right = socket.socketpair()
        received = {}

        def reader():
            received["frame"] = read_frame(right)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            write_frame(left, MSG_OK, blob)
        finally:
            left.close()
        thread.join(10.0)
        right.close()
        assert received["frame"] == (MSG_OK, blob)


class TestShardRecord:
    def test_create_verifies(self):
        record = ShardRecord.create(b"encoded-bytes", b"public-bytes")
        assert record.verify()

    def test_damage_fails_verify_but_unpacks(self):
        record = ShardRecord.create(b"encoded-bytes", b"public-bytes")
        rotten = ShardRecord(
            encoded=b"encoded-byteZ",
            public_bytes=record.public_bytes,
            crc_encoded=record.crc_encoded,
            crc_public=record.crc_public,
        )
        # Stored rot is NOT a wire error: the record still travels, the
        # reader's verify() is what catches it (and routes to repair).
        packed = rotten.pack()
        unpacked, _ = ShardRecord.unpack(packed)
        assert unpacked == rotten
        assert not unpacked.verify()

    def test_pack_unpack_roundtrip(self):
        record = ShardRecord.create(b"\x00\xff" * 100, b"{}")
        unpacked, offset = ShardRecord.unpack(record.pack())
        assert unpacked == record
        assert offset == len(record.pack())

    def test_unpack_rejects_overlong_inner_length(self):
        packed = bytearray(ShardRecord.create(b"abcd", b"ef").pack())
        packed[8:12] = (1 << 30).to_bytes(4, "little")
        with pytest.raises(IntegrityError):
            ShardRecord.unpack(bytes(packed))


class TestPayloads:
    def test_put_roundtrip(self):
        record = ShardRecord.create(b"enc", b"pub")
        for overwrite in (False, True):
            payload = pack_put("img-7", record, overwrite)
            assert unpack_put(payload) == ("img-7", record, overwrite)

    def test_id_roundtrip(self):
        assert unpack_id(pack_id("img-é")) == "img-é"
        with pytest.raises(IntegrityError):
            unpack_id(pack_id("img-1") + b"trailing")

    def test_ids_roundtrip(self):
        ids = [f"img-{i}" for i in range(100)]
        assert unpack_ids(pack_ids(ids)) == ids
        assert unpack_ids(pack_ids([])) == []

    def test_corrupt_roundtrip(self):
        payload = pack_corrupt("img-1", 12, "seed-x")
        assert unpack_corrupt(payload) == ("img-1", 12, "seed-x")

    def test_ping_roundtrip(self):
        payload = pack_ping_response("w3", 17, 12345, 6.5)
        assert unpack_ping_response(payload) == {
            "worker_id": "w3", "items": 17, "served": 12345,
            "uptime_s": 6.5,
        }

    def test_scrub_roundtrip(self):
        assert unpack_scrub_response(
            pack_scrub_response(True, "64x48")
        ) == (True, "64x48")
        assert unpack_scrub_response(
            pack_scrub_response(False, "stored CRC mismatch")
        ) == (False, "stored CRC mismatch")

    def test_error_roundtrip(self):
        code, message = unpack_error(pack_error(3, "bad request"))
        assert (code, message) == (3, "bad request")


class TestTraceContext:
    def test_pack_unpack_roundtrip(self):
        ctx = TraceContext(client_id=0xDEADBEEF01, span_id=42)
        unpacked, offset = unpack_trace_ctx(pack_trace_ctx(ctx))
        assert unpacked == ctx
        assert offset == len(pack_trace_ctx(ctx))

    def test_unsampled_roundtrip(self):
        ctx = TraceContext(client_id=7, span_id=9, sampled=False)
        unpacked, _ = unpack_trace_ctx(pack_trace_ctx(ctx))
        assert unpacked.sampled is False

    def test_short_block_rejected(self):
        with pytest.raises(IntegrityError):
            unpack_trace_ctx(b"\x01\x02")

    def test_with_trace_sets_flag_and_prefixes_block(self):
        ctx = TraceContext(client_id=1, span_id=2)
        ftype, payload = with_trace(MSG_GET, b"body", ctx)
        assert ftype == MSG_GET | FLAG_TRACE
        base, parsed, rest = strip_trace(ftype, payload)
        assert (base, parsed, rest) == (MSG_GET, ctx, b"body")

    def test_with_trace_none_is_passthrough(self):
        assert with_trace(MSG_GET, b"body", None) == (MSG_GET, b"body")

    def test_strip_trace_without_flag_is_passthrough(self):
        assert strip_trace(MSG_GET, b"body") == (MSG_GET, None, b"body")

    def test_traced_frame_roundtrips_through_codec(self):
        # The flagged type byte must survive encode/decode + CRC.
        ctx = TraceContext(client_id=3, span_id=4)
        ftype, payload = with_trace(MSG_PUT, b"data", ctx)
        frame = encode_frame(ftype, payload)
        decoded_type, decoded_payload = decode_frame(frame)
        assert strip_trace(decoded_type, decoded_payload) == (
            MSG_PUT, ctx, b"data"
        )


class TestPingV2:
    def test_extended_response_carries_telemetry(self):
        payload = pack_ping_response(
            "w1", 3, 99, 1.5,
            telemetry={
                "spans_recorded": 120,
                "spans_dropped": 4,
                "enabled": True,
            },
        )
        stats = unpack_ping_response(payload)
        assert stats["worker_id"] == "w1"
        assert stats["spans_recorded"] == 120
        assert stats["spans_dropped"] == 4
        assert stats["telemetry"] is True

    def test_v1_response_still_parses(self):
        # A legacy worker that ignores the request payload answers with
        # the short form; new clients must accept it unchanged.
        stats = unpack_ping_response(pack_ping_response("w0", 1, 2, 0.5))
        assert stats == {
            "worker_id": "w0", "items": 1, "served": 2, "uptime_s": 0.5,
        }
        assert "telemetry" not in stats

    def test_extended_marker_is_nonempty(self):
        assert PING_EXTENDED  # old workers must see a payload to ignore


class TestRing:
    def test_hash_is_stable_across_instances(self):
        assert ring_hash("img-1") == ring_hash("img-1")
        a = HashRing(["w0", "w1", "w2"])
        b = HashRing(["w2", "w0", "w1"])  # construction order irrelevant
        for key in (f"img-{i}" for i in range(50)):
            assert a.preference(key, 2) == b.preference(key, 2)

    def test_preference_distinct_workers(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        for i in range(100):
            prefs = ring.preference(f"img-{i}", 3)
            assert len(prefs) == len(set(prefs)) == 3

    def test_preference_clamps_to_member_count(self):
        ring = HashRing(["w0", "w1"])
        assert sorted(ring.preference("img-1", 5)) == ["w0", "w1"]

    def test_removal_moves_only_the_lost_replicas(self):
        ring = HashRing(["w0", "w1", "w2", "w3"])
        before = {f"img-{i}": ring.preference(f"img-{i}", 2)
                  for i in range(200)}
        ring.remove_node("w3")
        for key, old in before.items():
            new = ring.preference(key, 2)
            survivors = [worker for worker in old if worker != "w3"]
            # Surviving replicas keep their relative order; only the
            # slots w3 held get reassigned.
            assert [w for w in new if w in survivors] == survivors

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(["w0", "w1", "w2", "w3"], vnodes=DEFAULT_VNODES)
        counts = {worker: 0 for worker in ring.nodes}
        n = 2000
        for i in range(n):
            counts[ring.primary(f"img-{i}")] += 1
        for worker, count in counts.items():
            assert count > n / 16, (worker, counts)

    def test_membership_errors(self):
        from repro.util.errors import ReproError

        ring = HashRing(["w0"])
        with pytest.raises(ReproError):
            ring.add_node("w0")
        with pytest.raises(ReproError):
            ring.remove_node("w9")
        ring.remove_node("w0")
        with pytest.raises(ReproError):
            ring.preference("img-1", 1)


class TestTreeAndPeersOps:
    """PR 7 wire additions: MSG_TREE digests and the MSG_PEERS push."""

    def _summary(self, n=9):
        from repro.cluster.scrub import build_tree

        return build_tree(
            [(f"img-{i}", i * 3 + 1, i * 5 + 2) for i in range(n)]
        )

    def test_tree_request_roundtrip(self):
        from repro.cluster.wire import (
            TREE_SUMMARY,
            pack_tree_request,
            unpack_tree_request,
        )

        assert unpack_tree_request(
            pack_tree_request("w3", 6, TREE_SUMMARY)
        ) == ("w3", 6, TREE_SUMMARY)
        assert unpack_tree_request(
            pack_tree_request("w0", 8, 17)
        ) == ("w0", 8, 17)

    def test_tree_request_rejects_bad_depth(self):
        from repro.cluster.wire import (
            pack_tree_request,
            unpack_tree_request,
        )

        for depth in (0, 17):
            with pytest.raises(IntegrityError):
                unpack_tree_request(pack_tree_request("w0", depth))

    def test_tree_summary_roundtrip(self):
        from repro.cluster.wire import (
            TreeSummary,
            pack_tree_summary,
            unpack_tree_response,
        )

        summary = self._summary()
        decoded = unpack_tree_response(pack_tree_summary(summary))
        assert isinstance(decoded, TreeSummary)
        assert decoded == summary

    def test_tree_detail_roundtrip(self):
        from repro.cluster.wire import (
            pack_tree_detail,
            unpack_tree_response,
        )

        entries = {f"img-{i}": (i * 3 + 1, i * 5 + 2) for i in range(7)}
        assert unpack_tree_response(pack_tree_detail(entries)) == entries
        assert unpack_tree_response(pack_tree_detail({})) == {}

    def test_tree_response_rejects_unknown_tag(self):
        with pytest.raises(IntegrityError):
            from repro.cluster.wire import unpack_tree_response

            unpack_tree_response(b"\xff rest")

    def test_peers_roundtrip(self):
        from repro.cluster.wire import pack_peers, unpack_peers

        peers = {
            "w0": ("127.0.0.1", 9001),
            "w1": ("10.0.0.7", 9002),
        }
        replication, interval, decoded = unpack_peers(
            pack_peers(2, 1.5, peers)
        )
        assert replication == 2
        assert interval == 1.5
        assert decoded == peers

    def test_peers_empty_map(self):
        from repro.cluster.wire import pack_peers, unpack_peers

        assert unpack_peers(pack_peers(3, 0.0, {})) == (3, 0.0, {})


class TestPingV3:
    def test_storage_block_roundtrip(self):
        stats = unpack_ping_response(
            pack_ping_response(
                "w0", 4, 9, 1.25,
                telemetry={
                    "spans_recorded": 3,
                    "spans_dropped": 0,
                    "enabled": True,
                },
                storage={
                    "storage": {"segments": 2, "live_records": 4},
                    "scrub": {"sweeps": 1, "repairs": 0},
                },
            )
        )
        assert stats["items"] == 4
        assert stats["storage"]["storage"]["segments"] == 2
        assert stats["storage"]["scrub"]["sweeps"] == 1

    def test_v2_reply_has_no_storage_key(self):
        stats = unpack_ping_response(
            pack_ping_response(
                "w0", 1, 2, 0.5,
                telemetry={
                    "spans_recorded": 0,
                    "spans_dropped": 0,
                    "enabled": False,
                },
            )
        )
        assert "storage" not in stats

    def test_extended2_marker_is_distinct(self):
        from repro.cluster.wire import PING_EXTENDED2

        assert PING_EXTENDED2 and PING_EXTENDED2 != PING_EXTENDED

    def test_damaged_storage_json_is_integrity_error(self):
        from repro.core.serialization import pack_string
        from repro.cluster.wire import pack_ping_response

        blob = pack_ping_response(
            "w0", 1, 2, 0.5,
            telemetry={
                "spans_recorded": 0, "spans_dropped": 0, "enabled": False,
            },
            storage={"storage": {}},
        )
        # Replace the JSON tail with garbage of the same framing.
        base = pack_ping_response(
            "w0", 1, 2, 0.5,
            telemetry={
                "spans_recorded": 0, "spans_dropped": 0, "enabled": False,
            },
        )
        damaged = base + pack_string("{not-json")
        with pytest.raises(IntegrityError):
            unpack_ping_response(damaged)
        assert blob  # the well-formed variant still packs
