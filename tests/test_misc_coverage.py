"""Focused tests for helpers exercised only indirectly elsewhere."""

import numpy as np
import pytest

from repro.baselines.common import keystream_bytes, xor_bytes
from repro.bench.reporting import format_table
from repro.core.roi import expand_rect
from repro.datasets import dataset_profile, load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.search.descriptors import (
    color_histogram,
    edge_orientation_histogram,
    luminance_thumbnail,
)
from repro.transforms import Crop, Recompress
from repro.util.rect import Rect


class TestRectHelpers:
    def test_translated(self):
        assert Rect(1, 2, 3, 4).translated(10, -1) == Rect(11, 1, 3, 4)

    def test_expand_rect_symmetric(self):
        expanded = expand_rect(Rect(10, 10, 20, 10), 0.5)
        assert expanded == Rect(0, 5, 40, 20)

    def test_expand_rect_zero_is_identity(self):
        rect = Rect(4, 4, 8, 8)
        assert expand_rect(rect, 0.0) == rect


class TestKeystream:
    def test_deterministic_and_length(self):
        a = keystream_bytes("seed", 100)
        b = keystream_bytes("seed", 100)
        assert a == b and len(a) == 100

    def test_different_seeds_differ(self):
        assert keystream_bytes("a", 64) != keystream_bytes("b", 64)

    def test_xor_is_involution(self):
        data = bytes(range(50))
        assert xor_bytes(xor_bytes(data, "k"), "k") == data


class TestSearchDescriptorComponents:
    def test_color_histogram_normalized(self, noise_rgb):
        hist = color_histogram(noise_rgb)
        assert hist.shape == (64,)
        assert np.linalg.norm(hist) == pytest.approx(1.0)

    def test_color_histogram_detects_dominant_color(self):
        red = np.zeros((8, 8, 3), dtype=np.uint8)
        red[..., 0] = 250
        hist = color_histogram(red)
        assert hist.argmax() == 3 * 16  # highest red bin, zero green/blue

    def test_edge_histogram_directional(self):
        vertical_edges = np.zeros((32, 32))
        vertical_edges[:, ::4] = 255.0
        horizontal_edges = vertical_edges.T
        hv = edge_orientation_histogram(vertical_edges)
        hh = edge_orientation_histogram(horizontal_edges)
        assert not np.allclose(hv, hh)

    def test_thumbnail_zero_mean(self, noise_rgb):
        thumb = luminance_thumbnail(noise_rgb)
        assert thumb.shape == (64,)
        assert abs(thumb.mean()) < 0.2  # mean-centred before normalizing


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [("a", 1), ("long-name", 123456)]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len({len(line) for line in lines if line.strip()}) <= 2

    def test_format_table_empty_rows(self):
        table = format_table(["x"], [])
        assert "x" in table


class TestTransformHelpers:
    def test_crop_from_rect(self, rng):
        rect = Rect(2, 3, 4, 5)
        plane = rng.uniform(0, 1, (10, 10))
        direct = Crop(2, 3, 4, 5).apply([plane])[0]
        via_rect = Crop.from_rect(rect).apply([plane])[0]
        assert np.array_equal(direct, via_rect)

    def test_recompress_new_tables_scale_with_quality(self, smooth_image):
        coarse = Recompress(20).new_tables(smooth_image)
        fine = Recompress(90).new_tables(smooth_image)
        assert coarse[0].sum() > fine[0].sum()
        assert len(coarse) == smooth_image.n_channels

    def test_requantize_raw_matches_quantize(self, rng):
        from repro.jpeg.quantization import quantize

        raw = rng.uniform(-300, 300, (2, 8, 8))
        table = np.full((8, 8), 9, dtype=np.int32)
        assert np.array_equal(
            Recompress(50).requantize_raw(raw, table),
            quantize(raw, table),
        )


class TestCoefficientImageConstruction:
    def test_from_sample_planes_matches_from_array_gray(self, rng):
        gray = rng.integers(0, 256, (24, 32), dtype=np.uint8)
        via_array = CoefficientImage.from_array(gray, quality=60)
        via_planes = CoefficientImage.from_sample_planes(
            [gray.astype(np.float64)], via_array.quant_tables, "gray"
        )
        assert via_planes.coefficients_equal(via_array)


class TestDatasetProfileApi:
    def test_profile_lookup(self):
        profile = dataset_profile("inria")
        assert profile.kind == "landscapes"
        assert profile.paper_count == 1491

    def test_unknown_profile_rejected(self):
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            dataset_profile("cifar")


class TestReceiverConvenience:
    def test_fetch_pixels_returns_uint8(self):
        from repro.core import RegionOfInterest, SharingSession

        session = SharingSession("alice")
        photo = load_image("pascal", 2).array
        roi = RegionOfInterest("r", Rect(0, 0, 16, 16))
        session.share("img", photo, [roi], grants={"bob": ["matrix-r"]})
        pixels = session.receivers["bob"].fetch_pixels(session.psp, "img")
        assert pixels.dtype == np.uint8
        assert pixels.shape == photo.shape


class TestCustomTransformRegistration:
    def test_register_and_deserialize_custom_transform(self, rng):
        from repro.transforms.pipeline import (
            Transform,
            register_transform,
            transform_from_params,
        )

        @register_transform
        class Negate(Transform):
            name = "test-negate"

            def apply(self, planes):
                return [-p for p in planes]

            def params(self):
                return {}

            @classmethod
            def from_params(cls, params):
                return cls()

        rebuilt = transform_from_params({"name": "test-negate"})
        plane = rng.uniform(0, 1, (4, 4))
        assert np.array_equal(rebuilt.apply([plane])[0], -plane)
