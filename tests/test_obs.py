"""The repro.obs tracing/metrics layer: registry, exporters, CLI surface."""

import io
import json
import threading

import pytest

from repro import obs
from repro.obs import (
    NOOP_SPAN,
    Registry,
    aggregate_table,
    export_chrome_trace,
    export_jsonl,
)


@pytest.fixture()
def registry():
    return Registry(enabled=True)


class TestSpans:
    def test_records_wall_and_cpu_time(self, registry):
        with registry.span("work") as span:
            total = sum(range(20_000))
        assert total > 0
        assert span.wall_ms >= 0.0
        assert span.cpu_ms >= 0.0
        assert registry.span_wall_ms("work") == [span.wall_ms]

    def test_nesting_parent_child(self, registry):
        with registry.span("outer") as outer:
            with registry.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_sibling_spans_share_parent(self, registry):
        with registry.span("outer") as outer:
            with registry.span("a") as a:
                pass
            with registry.span("b") as b:
                pass
        assert a.parent_id == outer.span_id
        assert b.parent_id == outer.span_id

    def test_tags_and_events(self, registry):
        with registry.span("op", size=3) as span:
            span.tag(extra="yes")
            span.event("milestone", step=1)
        assert span.tags == {"size": 3, "extra": "yes"}
        assert len(span.events) == 1
        assert span.events[0].name == "milestone"
        assert span.events[0].fields == {"step": 1}
        assert span.events[0].offset_ms >= 0.0

    def test_registry_event_attaches_to_current_span(self, registry):
        with registry.span("op") as span:
            registry.event("note", detail="x")
        assert [e.name for e in span.events] == ["note"]

    def test_event_with_no_open_span_is_dropped(self, registry):
        registry.event("orphan")  # must not raise
        assert registry.spans() == []

    def test_exception_tags_error_and_closes(self, registry):
        with pytest.raises(ValueError):
            with registry.span("boom") as span:
                raise ValueError("no")
        assert span.tags["error"] == "ValueError"
        assert len(registry.spans()) == 1
        # The stack unwound: a new span is a root again.
        with registry.span("after") as after:
            pass
        assert after.parent_id is None

    def test_bounded_storage_drops_and_counts(self):
        registry = Registry(enabled=True, max_spans=5)
        for _ in range(8):
            with registry.span("s"):
                pass
        assert len(registry.spans()) == 5
        assert registry.dropped_spans == 3


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        registry = Registry(enabled=False)
        with registry.span("ignored"):
            registry.counter("c")
            registry.observe("h", 1.0)
        assert registry.spans() == []
        assert registry.counters() == []
        assert registry.histograms() == []

    def test_module_level_noop_when_disabled(self):
        obs.configure(enabled=False, fresh=True)
        assert obs.span("x") is NOOP_SPAN
        obs.counter("c")
        obs.observe("h", 1.0)
        obs.event("e")
        assert obs.get_registry().spans() == []
        assert obs.get_registry().counters() == []

    def test_noop_span_supports_full_interface(self):
        with NOOP_SPAN as span:
            span.tag(a=1)
            span.event("e", b=2)

    def test_configure_round_trip(self):
        obs.configure(enabled=True, fresh=True)
        assert obs.enabled()
        with obs.span("real") as span:
            pass
        assert span is not NOOP_SPAN
        assert obs.get_registry().span_wall_ms("real")
        obs.configure(enabled=False, fresh=True)
        assert not obs.enabled()


class TestMetrics:
    def test_counter_accumulates(self, registry):
        registry.counter("bytes", 10)
        registry.counter("bytes", 32)
        assert registry.counter_value("bytes") == 42.0

    def test_counter_tags_partition(self, registry):
        registry.counter("coeffs", 5, scheme="puppies-c")
        registry.counter("coeffs", 7, scheme="puppies-z")
        assert registry.counter_value("coeffs", scheme="puppies-c") == 5.0
        assert registry.counter_value("coeffs", scheme="puppies-z") == 7.0
        assert registry.counter_value("coeffs") == 0.0

    def test_histogram_buckets_and_values(self, registry):
        registry.observe("lat", 0.05, buckets=(0.1, 1.0, 10.0))
        registry.observe("lat", 5.0, buckets=(0.1, 1.0, 10.0))
        registry.observe("lat", 500.0, buckets=(0.1, 1.0, 10.0))
        (hist,) = registry.histograms()
        assert hist.count == 3
        assert sum(hist.bucket_counts) == 3
        assert sorted(hist.values) == [0.05, 5.0, 500.0]


class TestThreadSafety:
    def test_concurrent_spans_and_counters(self, registry):
        n_threads, per_thread = 8, 200

        def work():
            for _ in range(per_thread):
                with registry.span("threaded"):
                    registry.counter("ticks")

        threads = [
            threading.Thread(target=work) for _ in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(registry.spans()) == n_threads * per_thread
        assert registry.counter_value("ticks") == n_threads * per_thread

    def test_span_stacks_are_per_thread(self, registry):
        parents = {}

        def work(name):
            with registry.span(name) as outer:
                with registry.span(f"{name}.child") as child:
                    parents[name] = (outer.span_id, child.parent_id)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for outer_id, child_parent in parents.values():
            assert child_parent == outer_id


class TestExporters:
    def _populated(self):
        registry = Registry(enabled=True)
        with registry.span("outer", kind="test"):
            with registry.span("inner") as inner:
                inner.event("tick", n=1)
            registry.counter("bytes", 128, direction="up")
            registry.observe("size", 64.0, buckets=(32.0, 256.0))
        return registry

    def test_jsonl_round_trip(self):
        registry = self._populated()
        buffer = io.StringIO()
        n = export_jsonl(registry, buffer)
        lines = buffer.getvalue().strip().split("\n")
        assert len(lines) == n
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        spans = {r["name"]: r for r in by_type["span"]}
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["tags"] == {"kind": "test"}
        assert spans["inner"]["events"][0]["name"] == "tick"
        (counter,) = by_type["counter"]
        assert counter["value"] == 128
        assert counter["tags"] == {"direction": "up"}
        (hist,) = by_type["histogram"]
        assert hist["count"] == 1

    def test_jsonl_to_path(self, tmp_path):
        registry = self._populated()
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(registry, path)
        with open(path) as handle:
            for line in handle:
                json.loads(line)

    def test_chrome_trace_shape(self, tmp_path):
        registry = self._populated()
        path = str(tmp_path / "trace.json")
        export_chrome_trace(registry, path)
        with open(path) as handle:
            doc = json.load(handle)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in complete} == {"outer", "inner"}
        assert instants[0]["name"] == "inner/tick"
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0

    def test_aggregate_table_sections(self):
        registry = self._populated()
        table = aggregate_table(registry)
        assert "outer" in table
        assert "inner" in table
        assert "bytes{direction=up}" in table
        assert "size" in table
        # SummaryStats columns are present.
        for column in ("count", "mean", "median", "std", "min", "max"):
            assert column in table

    def test_aggregate_table_empty_registry(self):
        table = aggregate_table(Registry(enabled=True))
        assert "no spans recorded" in table


class TestExporterFidelity:
    """Round trips and awkward shapes the fleet trace leans on."""

    def _busy(self):
        registry = Registry(enabled=True)
        with registry.span("req", kind="get") as outer:
            outer.event("routed", replica="w0")
            with registry.span("decode"):
                pass
        with registry.span("boom") as bad:
            bad.tag(error="IntegrityError")
        registry.counter("bytes", 4096, direction="down")
        for value in (0.5, 3.0, 250.0):
            registry.observe("lat_ms", value)
        return registry

    def test_jsonl_import_reproduces_aggregate_table(self, tmp_path):
        from repro.obs import import_jsonl

        registry = self._busy()
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(registry, path)
        imported = import_jsonl(path)
        assert aggregate_table(imported) == aggregate_table(registry)
        # And the round trip is a fixed point: export again, same text.
        second = io.StringIO()
        export_jsonl(imported, second)
        reimported = import_jsonl(io.StringIO(second.getvalue()))
        assert aggregate_table(reimported) == aggregate_table(registry)

    def test_jsonl_import_restores_structure(self, tmp_path):
        from repro.obs import import_jsonl

        registry = self._busy()
        path = str(tmp_path / "trace.jsonl")
        export_jsonl(registry, path)
        imported = import_jsonl(path)
        spans = {span.name: span for span in imported.spans()}
        assert spans["decode"].parent_id == spans["req"].span_id
        assert spans["boom"].tags == {"error": "IntegrityError"}
        assert spans["req"].events[0].fields == {"replica": "w0"}
        assert imported.counter_value("bytes", direction="down") == 4096
        (histogram,) = imported.histograms()
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(253.5)

    def test_chrome_export_error_tagged_span(self, tmp_path):
        registry = self._busy()
        path = str(tmp_path / "trace.json")
        export_chrome_trace(registry, path)
        with open(path) as handle:
            doc = json.load(handle)
        (boom,) = [
            event for event in doc["traceEvents"]
            if event.get("name") == "boom"
        ]
        assert boom["args"]["error"] == "IntegrityError"

    def test_chrome_export_misnested_spans(self, tmp_path):
        """A child that outlives its parent must still export cleanly
        (chrome:tracing tolerates overlap; we must not crash or drop)."""
        registry = Registry(enabled=True)
        parent = registry.span("parent")
        parent.__enter__()
        child = registry.span("child")
        child.__enter__()
        parent.__exit__(None, None, None)  # parent closes first
        child.__exit__(None, None, None)
        path = str(tmp_path / "misnested.json")
        export_chrome_trace(registry, path)
        with open(path) as handle:
            doc = json.load(handle)
        names = {
            event["name"] for event in doc["traceEvents"]
            if event["ph"] == "X"
        }
        assert names == {"parent", "child"}

    def test_concurrent_counters_and_histograms_export_exact(self):
        registry = Registry(enabled=True)
        n_threads, per_thread = 8, 500

        def work():
            for index in range(per_thread):
                registry.counter("ops")
                registry.observe("val", float(index))

        threads = [
            threading.Thread(target=work) for _ in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = n_threads * per_thread
        assert registry.counter_value("ops") == total
        (histogram,) = registry.histograms()
        assert histogram.count == total
        buffer = io.StringIO()
        export_jsonl(registry, buffer)
        records = [
            json.loads(line) for line in buffer.getvalue().splitlines()
        ]
        (hist_record,) = [
            r for r in records if r["type"] == "histogram"
        ]
        assert hist_record["count"] == total
        assert hist_record["values_dropped"] == total - len(
            hist_record["values"]
        )


class TestBoundedHistograms:
    def test_values_dropped_surfaces_in_exports(self):
        from repro.obs import DEFAULT_RESERVOIR_SIZE

        registry = Registry(enabled=True)
        n = DEFAULT_RESERVOIR_SIZE + 500
        for index in range(n):
            registry.observe("big", float(index))
        (histogram,) = registry.histograms()
        assert histogram.values_dropped == 500
        assert len(histogram.values) == DEFAULT_RESERVOIR_SIZE
        table = aggregate_table(registry)
        assert "500 raw histogram value(s) aged out" in table
        buffer = io.StringIO()
        export_jsonl(registry, buffer)
        (record,) = [
            json.loads(line)
            for line in buffer.getvalue().splitlines()
            if json.loads(line)["type"] == "histogram"
        ]
        assert record["values_dropped"] == 500

    def test_count_and_sum_stay_exact_past_capacity(self):
        from repro.obs import DEFAULT_RESERVOIR_SIZE

        registry = Registry(enabled=True)
        n = DEFAULT_RESERVOIR_SIZE * 2
        for _ in range(n):
            registry.observe("flat", 2.0)
        (histogram,) = registry.histograms()
        assert histogram.count == n
        assert histogram.sum == pytest.approx(2.0 * n)
        assert histogram.quantile(0.5) == 2.0


class TestThreadIdCache:
    def test_small_ids_stable_and_dense(self, registry):
        seen = {}
        # Keep every thread alive until all have allocated: a dead
        # thread's ident (and so its small id) may be reused by the OS.
        barrier = threading.Barrier(6)

        def work(key):
            # Two lookups must hit the cached id (second is lock-free).
            first = registry._small_thread_id()
            second = registry._small_thread_id()
            seen[key] = (first, second)
            barrier.wait()

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for first, second in seen.values():
            assert first == second
        ids = sorted(first for first, _ in seen.values())
        assert len(set(ids)) == len(ids)  # unique per thread

    def test_span_thread_ids_use_cache(self, registry):
        with registry.span("here") as span:
            pass
        assert span.thread_id == registry._small_thread_id()


class TestCliProfile:
    @pytest.fixture()
    def photo(self, tmp_path):
        from repro.cli import main

        path = str(tmp_path / "photo.ppm")
        assert main(
            ["demo", "--dataset", "pascal", "--index", "0", "-o", path]
        ) == 0
        return path

    def test_profile_prints_stage_table(self, photo, capsys):
        from repro.cli import main

        assert main(["profile", photo]) == 0
        out = capsys.readouterr().out
        for span_name in (
            "codec.pixel_encode",
            "codec.encode",
            "perturb.regions",
            "transform.pipeline",
            "reconstruct.regions",
            "psp.upload",
            "psp.download",
        ):
            assert span_name in out
        assert "round-trip exact" in out

    def test_profile_trace_flag_writes_jsonl(self, photo, tmp_path):
        from repro.cli import main

        trace = str(tmp_path / "out.jsonl")
        assert main(["profile", photo, "--trace", trace]) == 0
        with open(trace) as handle:
            records = [json.loads(line) for line in handle]
        assert records[0]["type"] == "meta"
        assert any(r["type"] == "span" for r in records)

    def test_protect_trace_flag(self, photo, tmp_path):
        from repro.cli import main

        share = str(tmp_path / "share")
        trace = str(tmp_path / "protect.jsonl")
        assert main(
            [
                "protect", photo, "--out-dir", share,
                "--roi", "8,8,48,64", "--trace", trace,
            ]
        ) == 0
        with open(trace) as handle:
            names = [
                json.loads(line).get("name")
                for line in handle
            ]
        assert "perturb.regions" in names
        assert "codec.encode" in names


@pytest.fixture(autouse=True)
def _reset_module_registry():
    """Keep the process-global registry disabled across tests."""
    yield
    obs.configure(enabled=False, fresh=True)
