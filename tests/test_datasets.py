"""Synthetic dataset generator tests."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_NAMES,
    PROFILES,
    load_dataset,
    load_image,
    render_face,
    sample_identity,
)
from repro.datasets import font, shapes
from repro.datasets.documents import render_document
from repro.datasets.landscapes import render_landscape
from repro.datasets.street import render_street
from repro.util.errors import ReproError
from repro.util.rect import Rect
from repro.util.rng import rng_from_key


class TestFont:
    def test_glyphs_are_7x5(self):
        for char, glyph in font.GLYPHS.items():
            assert glyph.shape == (7, 5), char

    def test_alphabet_and_digits_covered(self):
        for char in "ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-:./!, ":
            assert font.glyph_for(char) is not None

    def test_unknown_char_maps_to_space(self):
        assert np.array_equal(font.glyph_for("@"), font.GLYPHS[" "])

    def test_distinct_glyphs(self):
        assert not np.array_equal(font.glyph_for("O"), font.glyph_for("0"))
        assert not np.array_equal(font.glyph_for("I"), font.glyph_for("1"))

    def test_text_mask_width(self):
        mask = font.text_mask("AB")
        assert mask.shape == (7, 11)  # 5 + 1 + 5

    def test_text_mask_scaling(self):
        mask1 = font.text_mask("A", scale=1)
        mask3 = font.text_mask("A", scale=3)
        assert mask3.shape == (21, 15)
        assert mask3.sum() == 9 * mask1.sum()

    def test_render_text_returns_covered_rect(self):
        img = shapes.canvas(40, 80, (255, 255, 255))
        rect = font.render_text(img, "HI", 5, 10, (0, 0, 0))
        assert rect.y == 5 and rect.x == 10
        assert (img[rect.slices()] == 0).any()

    def test_render_text_clipped_at_border(self):
        img = shapes.canvas(10, 10, (255, 255, 255))
        rect = font.render_text(img, "WWWWW", 5, 5, (0, 0, 0))
        assert rect.y2 <= 10 and rect.x2 <= 10

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            font.text_mask("A", scale=0)


class TestShapes:
    def test_fill_rect_clips(self):
        img = shapes.canvas(10, 10)
        shapes.fill_rect(img, Rect(8, 8, 10, 10), (5, 5, 5))
        assert (img[8:, 8:] == 5).all()
        assert (img[:8, :8] == 0).all()

    def test_fill_ellipse_inside_only(self):
        img = shapes.canvas(20, 20)
        shapes.fill_ellipse(img, (10, 10), (5, 3), (9, 9, 9))
        assert (img[10, 10] == 9).all()
        assert (img[10, 14] == 0).all()  # outside the x-axis of 3
        assert (img[14, 10] == 9).all()  # inside the y-axis of 5

    def test_fill_polygon_triangle(self):
        img = shapes.canvas(20, 20)
        shapes.fill_polygon(img, [(2, 2), (2, 17), (17, 2)], (1, 1, 1))
        assert (img[3, 3] == 1).all()
        assert (img[16, 16] == 0).all()

    def test_value_noise_smooth_and_bounded(self):
        noise = shapes.value_noise(rng_from_key("n"), 50, 60, cell=10)
        assert noise.shape == (50, 60)
        assert np.abs(noise).max() <= 1.0
        # Smoothness: neighbouring samples differ far less than the range.
        assert np.abs(np.diff(noise, axis=0)).max() < 0.5

    def test_ridge_line_length_and_variation(self):
        ridge = shapes.ridge_line(rng_from_key("r"), 100, base=50.0,
                                  roughness=10.0)
        assert ridge.shape == (100,)
        assert ridge.std() > 0.5


class TestFaceRenderer:
    def test_identity_sampling_varies(self):
        gen = rng_from_key("ids")
        a, b = sample_identity(gen), sample_identity(gen)
        assert a != b

    def test_render_returns_face_box_inside_image(self):
        img = shapes.canvas(100, 80, (50, 50, 50))
        identity = sample_identity(rng_from_key("i"))
        box = render_face(
            img, Rect(10, 10, 70, 55), identity, rng_from_key("j")
        )
        assert box.y >= 0 and box.x >= 0
        assert box.h >= 8 and box.w >= 8

    def test_face_has_haar_structure(self):
        # The cheek band must be brighter than hair above and mouth below.
        img = shapes.canvas(120, 90, (40, 40, 40))
        identity = sample_identity(rng_from_key("s"))
        box = render_face(
            img, Rect(5, 5, 110, 80), identity, rng_from_key("s2"), jitter=0
        )
        gray = img.mean(axis=2)
        rows, cols = box.slices()
        face = gray[rows, cols]
        h = face.shape[0]
        hair = face[: int(0.15 * h)].mean()
        cheeks = face[int(0.55 * h) : int(0.7 * h)].mean()
        assert cheeks > hair + 20

    def test_same_identity_similar_across_jitter(self):
        identity = sample_identity(rng_from_key("p"))
        imgs = []
        for seed in ("a", "b"):
            img = shapes.canvas(100, 80, (60, 60, 60))
            render_face(img, Rect(5, 5, 90, 70), identity, rng_from_key(seed))
            imgs.append(img)
        diff = np.abs(imgs[0] - imgs[1]).mean()
        assert diff < 40  # same person, modest pose/lighting variation


class TestSceneGenerators:
    def test_landscape_shape_and_annotations(self):
        img, objects = render_landscape(rng_from_key("l"), 80, 120)
        assert img.shape == (80, 120, 3)
        for obj in objects:
            assert obj.clipped(80, 120) is not None

    def test_document_has_sensitive_lines(self):
        img, sensitive = render_document(rng_from_key("d"), 100, 160)
        assert img.shape == (100, 160, 3)
        assert len(sensitive) >= 2
        for box in sensitive:
            assert box.clipped(100, 160) is not None

    def test_street_has_plate_and_car(self):
        img, ann = render_street(rng_from_key("s"), 100, 150)
        assert len(ann.texts) == 1  # the license plate
        assert len(ann.objects) >= 1  # the car


class TestLoader:
    def test_dataset_names(self):
        assert set(DATASET_NAMES) == {"caltech", "feret", "inria", "pascal"}

    @pytest.mark.parametrize("name", ["caltech", "feret", "inria", "pascal"])
    def test_profiles_match_rendered_shapes(self, name):
        profile = PROFILES[name]
        image = load_image(name, 0)
        assert image.array.shape == (profile.height, profile.width, 3)
        assert image.array.dtype == np.uint8

    def test_determinism(self):
        a = load_image("pascal", 5, seed=3)
        b = load_image("pascal", 5, seed=3)
        assert np.array_equal(a.array, b.array)
        assert a.texts == b.texts and a.faces == b.faces

    def test_seed_changes_content(self):
        a = load_image("pascal", 5, seed=3)
        b = load_image("pascal", 5, seed=4)
        assert not np.array_equal(a.array, b.array)

    def test_feret_identities_cycle(self):
        n_ids = PROFILES["feret"].n_identities
        first = load_image("feret", 0)
        again = load_image("feret", n_ids)
        assert first.identity == again.identity == 0
        # Same person, different shot.
        assert not np.array_equal(first.array, again.array)

    def test_pascal_mix_includes_documents_and_streets(self):
        images = load_dataset("pascal", n_images=8)
        assert any(im.texts and not im.objects for im in images)  # document
        assert any(im.objects and im.texts for im in images)  # street

    def test_load_dataset_count(self):
        assert len(load_dataset("inria", n_images=3)) == 3

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ReproError):
            load_image("imagenet", 0)

    def test_all_sensitive_aggregates(self):
        image = load_image("pascal", 0)
        assert len(image.all_sensitive) == (
            len(image.faces) + len(image.texts) + len(image.objects)
        )
