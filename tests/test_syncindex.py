"""Sync-indexed parallel decode: trailer format, lockstep engine, salvage.

The SIDX trailer (docs/FORMATS.md §1) plus the lockstep decoder in
:mod:`repro.jpeg.fastentropy` are this repo's nvJPEG-style restart
parallelism. The safety contract under test: the lockstep path must be
*bit-exact* with the sequential walker whenever it runs, and any
malformed, truncated or lying trailer must degrade to the sequential
walker or raise ``IntegrityError`` — never wrong pixels, never a crash.
Salvage gains per-segment certification: a corrupted segment loses only
itself.
"""

from __future__ import annotations

import struct
import zlib
from contextlib import contextmanager

import numpy as np
import pytest

from repro import obs
from repro.core.keys import generate_private_key
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.roi import RegionOfInterest
from repro.jpeg import codec, fastentropy, syncindex
from repro.jpeg.codec import JpegCodec, decode_image, encode_image
from repro.jpeg.coefficients import GRAY, YCBCR, CoefficientImage
from repro.jpeg.filesize import encoded_size_bytes
from repro.jpeg.huffman import DEFAULT_AC_TABLE, DEFAULT_DC_TABLE
from repro.util.errors import IntegrityError
from repro.util.rect import Rect


@contextmanager
def use_backend(name: str):
    previous = codec.set_entropy_backend(name)
    try:
        yield
    finally:
        codec.set_entropy_backend(previous)


@contextmanager
def lockstep(mode: str):
    previous = codec.set_lockstep_mode(mode)
    try:
        yield
    finally:
        codec.set_lockstep_mode(previous)


@contextmanager
def capture_spans():
    registry = obs.Registry(enabled=True)
    previous = obs.set_registry(registry)
    try:
        yield registry
    finally:
        obs.set_registry(previous)


def make_image(
    h: int, w: int, n_channels: int = 3, density: float = 0.25, seed: int = 0
) -> CoefficientImage:
    rng = np.random.default_rng(seed)
    by, bx = h // 8, w // 8
    channels = []
    for _ in range(n_channels):
        blocks = np.zeros((by, bx, 8, 8), dtype=np.int32)
        mask = rng.random((by, bx, 8, 8)) < density
        blocks[mask] = rng.integers(-200, 200, int(mask.sum()))
        blocks[:, :, 0, 0] = rng.integers(-500, 500, (by, bx))
        channels.append(blocks)
    tables = [np.ones((8, 8), dtype=np.int32)] * n_channels
    colorspace = GRAY if n_channels == 1 else YCBCR
    return CoefficientImage(channels, tables, h, w, colorspace)


def assert_images_equal(a: CoefficientImage, b: CoefficientImage) -> None:
    assert a.n_channels == b.n_channels
    for ca, cb in zip(a.channels, b.channels):
        np.testing.assert_array_equal(ca, cb)


def split_container(data: bytes):
    """(header dict, streams, trailer offset) of an encoded container."""
    c = JpegCodec()
    header, offset = c._parse_header(data)
    streams = []
    for _ in range(header["n_channels"]):
        stream, crc_ok, _truncated, offset = c._read_stream(data, offset)
        assert crc_ok
        streams.append(stream)
    return header, streams, offset


def corrupt_trailer(data: bytes, mutate) -> bytes:
    """Apply ``mutate(bytearray)`` to the SIDX trailer, re-CRC it."""
    tpos = data.rindex(syncindex.SIDX_MAGIC)
    trailer = bytearray(data[tpos:])
    mutate(trailer)
    body = bytes(trailer[:-4])
    return (
        data[:tpos]
        + body
        + struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
    )


# ---------------------------------------------------------------------------
# Trailer planning + format units
# ---------------------------------------------------------------------------


class TestTrailerFormat:
    def test_plan_interval_bounds(self):
        # Dense stream: small K, never below 2; sparse: capped at n_blocks.
        assert syncindex.plan_interval(1000, 4096 * 1000) == 2
        assert syncindex.plan_interval(100, 10) == 100
        assert syncindex.plan_interval(0, 1234) == 1
        k = syncindex.plan_interval(1024, 4096 * 64)
        assert 2 <= k <= 1024
        # Segments span at least the target bits (up to the tail).
        assert k * (4096 * 64) // 1024 >= syncindex.SEGMENT_TARGET_BITS

    def test_trailer_size_matches_packed_bytes(self):
        image = make_image(128, 128, 3, seed=1)
        data = encode_image(image, sync_index=True)
        bare = encode_image(image, sync_index=False)
        header, streams, offset = split_container(data)
        index, reason = syncindex.parse_index(
            data, offset, 3, 16 * 16, [len(s) for s in streams]
        )
        assert reason is None
        counts = [ch.n_segments for ch in index.channels]
        assert len(data) - len(bare) == syncindex.trailer_size_bytes(counts)

    def test_trailer_is_strictly_appended(self):
        image = make_image(256, 256, 3, seed=2)
        data = encode_image(image)
        bare = encode_image(image, sync_index=False)
        assert data.startswith(bare)
        assert data[len(bare) : len(bare) + 4] == syncindex.SIDX_MAGIC

    def test_auto_policy_skips_small_images(self):
        small = make_image(16, 16, 1, seed=3)
        auto = encode_image(small)
        assert auto == encode_image(small, sync_index=False)
        forced = encode_image(small, sync_index=True)
        assert len(forced) > len(auto)
        assert_images_equal(decode_image(forced), decode_image(auto))

    def test_checkpoints_match_encoder_truth(self):
        image = make_image(128, 128, 1, density=0.4, seed=4)
        zigzag = image.zigzag_channel(0)
        stream, bits = fastentropy.encode_channel_stream_indexed(
            zigzag, DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
        )
        # Block 0 starts at bit 0; starts are strictly increasing; the
        # recorded positions reproduce under a sequential decode.
        assert bits[0] == 0
        assert (np.diff(bits) > 0).all()
        data = encode_image(image, sync_index=True)
        header, streams, offset = split_container(data)
        index, reason = syncindex.parse_index(
            data, offset, 1, zigzag.shape[0], [len(streams[0])]
        )
        assert reason is None
        ch = index.channels[0]
        np.testing.assert_array_equal(
            ch.starts, bits[:: ch.interval]
        )
        dc = zigzag[:, 0].astype(np.int64)
        np.testing.assert_array_equal(
            ch.preds[1:], dc[ch.interval - 1 :: ch.interval][: ch.n_segments - 1]
        )


# ---------------------------------------------------------------------------
# Equivalence: lockstep vs walker vs scalar
# ---------------------------------------------------------------------------


class TestLockstepEquivalence:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("n_channels", [1, 3])
    def test_scheme_fuzz_equivalence(self, scheme, n_channels):
        """Scalar-vs-lockstep across all four schemes, both colorspaces."""
        base = make_image(
            96, 96, n_channels, density=0.2,
            seed=hash((scheme, n_channels)) % 2**31,
        )
        roi = RegionOfInterest("r", Rect(0, 0, 96, 96), scheme=scheme)
        key = generate_private_key(roi.matrix_id, f"owner-{scheme}")
        perturbed, _public = perturb_regions(
            base, [roi], {roi.matrix_id: key}
        )
        data = encode_image(perturbed, sync_index=True)
        with lockstep("force"):
            fast = decode_image(data)
        with lockstep("off"):
            walker = decode_image(data)
        with use_backend("scalar"):
            scalar = decode_image(data)
        assert_images_equal(fast, walker)
        assert_images_equal(fast, scalar)
        assert_images_equal(fast, perturbed)

    def test_backend_byte_identity_including_trailer(self):
        image = make_image(128, 160, 3, density=0.3, seed=5)
        with use_backend("fast"):
            fast_bytes = encode_image(image)
        with use_backend("scalar"):
            scalar_bytes = encode_image(image)
        assert fast_bytes == scalar_bytes
        assert syncindex.SIDX_MAGIC in fast_bytes[-4096:]

    def test_indexless_container_decodes_via_fallback(self):
        image = make_image(256, 256, 3, seed=6)
        bare = encode_image(image, sync_index=False)
        with capture_spans() as registry:
            with use_backend("fast"), lockstep("auto"):
                decoded = decode_image(bare)
        assert_images_equal(decoded, decode_image(encode_image(image)))
        spans = [s for s in registry.spans() if s.name == "codec.decode"]
        assert spans[-1].tags["path"] == "walker"

    def test_workers_equal_single_thread(self):
        image = make_image(192, 192, 3, density=0.35, seed=7)
        data = encode_image(image, sync_index=True)
        with lockstep("force"):
            one = decode_image(data, workers=1)
            two = decode_image(data, workers=2)
            four = decode_image(data, workers=4)
        assert_images_equal(one, two)
        assert_images_equal(one, four)

    def test_single_block_and_tiny_images(self):
        for h, w, nch in [(8, 8, 1), (8, 16, 1), (16, 8, 3)]:
            image = make_image(h, w, nch, density=0.5, seed=h * w + nch)
            data = encode_image(image, sync_index=True)
            with lockstep("force"):
                fast = decode_image(data)
            with lockstep("off"):
                assert_images_equal(fast, decode_image(data))

    def test_optimized_tables_lockstep(self):
        image = make_image(160, 160, 3, density=0.3, seed=8)
        data = encode_image(image, optimize=True, sync_index=True)
        with lockstep("force"):
            fast = decode_image(data)
        with lockstep("off"):
            assert_images_equal(fast, decode_image(data))

    def test_filesize_parity_on_indexed_containers(self):
        for seed, (h, w, nch, opt) in enumerate(
            [(256, 256, 3, False), (128, 128, 1, True), (96, 96, 3, False)]
        ):
            image = make_image(h, w, nch, density=0.3, seed=100 + seed)
            assert encoded_size_bytes(image, optimize=opt) == len(
                encode_image(image, optimize=opt)
            )
            assert encoded_size_bytes(
                image, optimize=opt, sync_index=False
            ) == len(encode_image(image, optimize=opt, sync_index=False))


# ---------------------------------------------------------------------------
# Hostile trailers: degrade, never corrupt
# ---------------------------------------------------------------------------


class TestHostileTrailers:
    @pytest.fixture(scope="class")
    def container(self):
        image = make_image(192, 192, 3, density=0.3, seed=9)
        data = encode_image(image, sync_index=True)
        return data, decode_image(data, workers=1)

    def assert_safe(self, mutated: bytes, expected) -> None:
        """Mutated container must decode correctly or raise IntegrityError."""
        with lockstep("force"):
            try:
                got = decode_image(mutated)
            except IntegrityError:
                return
        assert_images_equal(got, expected)

    def test_truncated_trailer(self, container):
        data, expected = container
        tpos = data.rindex(syncindex.SIDX_MAGIC)
        for cut in (1, 5, 17, len(data) - tpos - 1):
            self.assert_safe(data[: len(data) - cut], expected)

    def test_bit_flipped_trailer(self, container):
        data, expected = container
        tpos = data.rindex(syncindex.SIDX_MAGIC)
        rng = np.random.default_rng(0)
        for _ in range(20):
            pos = int(rng.integers(tpos, len(data)))
            mutated = bytearray(data)
            mutated[pos] ^= 1 << int(rng.integers(0, 8))
            self.assert_safe(bytes(mutated), expected)

    def test_lying_start_offsets_with_valid_crc(self, container):
        """Shifted checkpoints whose trailer CRC is *recomputed* to pass."""
        data, expected = container
        for delta in (-8, -1, 1, 8, 64):
            def shift(trailer, delta=delta):
                # Second segment record of channel 0 (the first is pinned
                # to start=0, which parse_index checks outright).
                rec = 6 + 8 + 10
                (start,) = struct.unpack_from("<I", trailer, rec)
                struct.pack_into(
                    "<I", trailer, rec, max(0, start + delta)
                )
            self.assert_safe(corrupt_trailer(data, shift), expected)

    def test_lying_dc_predictors_with_valid_crc(self, container):
        data, expected = container
        def lie(trailer):
            # pred field of channel 0's second segment record.
            struct.pack_into("<h", trailer, 6 + 8 + 10 + 4, 999)
        self.assert_safe(corrupt_trailer(data, lie), expected)

    def test_wrong_segment_count(self, container):
        data, expected = container
        def lie(trailer):
            struct.pack_into("<I", trailer, 6 + 4, 1)  # n_segments = 1
        self.assert_safe(corrupt_trailer(data, lie), expected)

    def test_trailing_junk_after_trailer(self, container):
        data, expected = container
        self.assert_safe(data + b"\x00" * 7, expected)
        self.assert_safe(data + b"JUNKJUNK", expected)

    def test_junk_instead_of_trailer(self, container):
        data, expected = container
        bare = data[: data.rindex(syncindex.SIDX_MAGIC)]
        self.assert_safe(bare + b"\xff" * 32, expected)
        self.assert_safe(bare + syncindex.SIDX_MAGIC, expected)

    def test_rejected_trailer_counts_and_falls_back(self, container):
        data, expected = container
        mutated = bytearray(data)
        mutated[-1] ^= 0xFF  # break the trailer CRC
        with capture_spans() as registry:
            with use_backend("fast"), lockstep("auto"):
                got = decode_image(bytes(mutated))
        assert_images_equal(got, expected)
        assert registry.counter_value("codec.decode.sync_index_rejected") == 1
        spans = [s for s in registry.spans() if s.name == "codec.decode"]
        assert spans[-1].tags["path"] == "walker"


# ---------------------------------------------------------------------------
# Salvage: damage confined to one segment
# ---------------------------------------------------------------------------


class TestIndexedSalvage:
    def test_single_corrupted_segment_loses_only_itself(self):
        image = make_image(192, 192, 3, density=0.3, seed=10)
        data = encode_image(image, sync_index=True)
        header, streams, offset = split_container(data)
        n_blocks = 24 * 24
        index, reason = syncindex.parse_index(
            data, offset, 3, n_blocks, [len(s) for s in streams]
        )
        assert reason is None
        # Smash bytes in the middle of channel 0's stream.
        _c = JpegCodec()
        _header, stream0_off = _c._parse_header(data)
        mid = stream0_off + 4 + len(streams[0]) // 2
        corrupted = bytearray(data)
        for k in range(4):
            corrupted[mid + k] ^= 0xFF
        result = decode_image(bytes(corrupted), salvage=True)
        assert not result.channel_crc_ok[0]
        assert result.channel_crc_ok[1] and result.channel_crc_ok[2]
        ch0 = index.channels[0]
        # Damage exists but is a small minority of blocks (a couple of
        # segments at most), and channels 1/2 are fully clean.
        damaged = result.block_damage[0].reshape(-1)
        assert damaged.any()
        assert damaged.sum() <= 2 * ch0.interval
        assert not result.block_damage[1:].any()
        # Every block marked clean is bit-exact with the original.
        original = decode_image(data)
        om = original.channels[0].reshape(n_blocks, 8, 8)
        sm = result.image.channels[0].reshape(n_blocks, 8, 8)
        for i in np.flatnonzero(~damaged):
            np.testing.assert_array_equal(om[i], sm[i])

    def test_salvage_without_index_unchanged(self):
        image = make_image(192, 192, 3, density=0.3, seed=11)
        data = encode_image(image, sync_index=False)
        _c = JpegCodec()
        _header, off = _c._parse_header(data)
        (slen,) = struct.unpack_from("<I", data, off)
        corrupted = bytearray(data)
        corrupted[off + 4 + slen // 2] ^= 0xFF
        result = decode_image(bytes(corrupted), salvage=True)
        # No index: the historical all-or-nothing contract applies.
        assert result.block_damage[0].all()
        assert not result.block_damage[1:].any()

    def test_corrupted_trailer_degrades_to_whole_stream_salvage(self):
        image = make_image(192, 192, 3, density=0.3, seed=12)
        data = encode_image(image, sync_index=True)
        corrupted = bytearray(data)
        corrupted[-1] ^= 0xFF  # trailer CRC now fails
        _c = JpegCodec()
        _header, off = _c._parse_header(bytes(corrupted))
        (slen,) = struct.unpack_from("<I", bytes(corrupted), off)
        corrupted[off + 4 + slen // 2] ^= 0xFF
        result = decode_image(bytes(corrupted), salvage=True)
        assert result.block_damage[0].all()

    def test_intact_container_salvage_still_clean(self):
        image = make_image(128, 128, 3, seed=13)
        data = encode_image(image, sync_index=True)
        result = decode_image(data, salvage=True)
        assert result.is_clean
        assert_images_equal(result.image, decode_image(data))


# ---------------------------------------------------------------------------
# Serving paths: span evidence that the fleet uses the fast path
# ---------------------------------------------------------------------------


class TestServingPaths:
    def _protected_big_image(self, seed=14):
        from repro.core.roi import RegionOfInterest

        rng = np.random.default_rng(seed)
        array = rng.integers(0, 256, (256, 256, 3), dtype=np.uint8)
        image = CoefficientImage.from_array(array, quality=75)
        roi = RegionOfInterest("r", Rect(8, 8, 24, 24))
        key = generate_private_key(roi.matrix_id, "span-owner")
        perturbed, public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        return perturbed, public

    def test_service_cache_miss_uses_lockstep(self):
        from repro.service import PspService

        perturbed, public = self._protected_big_image()
        with capture_spans() as registry:
            with use_backend("fast"), lockstep("auto"):
                service = PspService(workers=1)
                try:
                    service.upload("img", perturbed, public)
                    service.download("img")  # cold: decode cache miss
                finally:
                    service.close()
        decodes = [
            s for s in registry.spans() if s.name == "codec.decode"
        ]
        assert any(s.tags.get("path") == "lockstep" for s in decodes)
        assert all(s.tags.get("backend") == "fast" for s in decodes)

    def test_cluster_scrub_uses_lockstep(self):
        from repro.cluster.wire import ShardRecord, decode_frame, MSG_OK
        from repro.cluster.worker import ShardWorker

        perturbed, public = self._protected_big_image(seed=15)
        encoded = encode_image(perturbed)
        record = ShardRecord.create(encoded, b"public-bytes")
        worker = ShardWorker("w0", port=0)
        try:
            worker.storage.put("img", record, overwrite=False)
            with capture_spans() as registry:
                with use_backend("fast"), lockstep("auto"):
                    reply = worker._scrub("img")
            ftype, _payload = decode_frame(reply)
            assert ftype == MSG_OK
            decodes = [
                s for s in registry.spans() if s.name == "codec.decode"
            ]
            assert any(
                s.tags.get("path") == "lockstep" for s in decodes
            )
        finally:
            worker.close()


# ---------------------------------------------------------------------------
# API guards
# ---------------------------------------------------------------------------


class TestDispatchApi:
    def test_set_lockstep_mode_validates(self):
        with pytest.raises(ValueError):
            codec.set_lockstep_mode("sometimes")
        assert codec.lockstep_mode() in codec.LOCKSTEP_MODES

    def test_auto_threshold_picks_walker_for_few_segments(self):
        image = make_image(96, 96, 1, density=0.2, seed=16)
        data = encode_image(image, sync_index=True)
        with capture_spans() as registry:
            with use_backend("fast"), lockstep("auto"):
                decode_image(data)
        spans = [s for s in registry.spans() if s.name == "codec.decode"]
        # A forced-index tiny container has far fewer segments than the
        # dispatch threshold: auto mode must keep the walker.
        assert spans[-1].tags["path"] == "walker"
