"""Randomness analysis: the statistical -N / -B gap."""

import numpy as np
import pytest

from repro.attacks.randomness import analyze_region_randomness
from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.rect import Rect


@pytest.fixture(scope="module")
def protected_by_scheme():
    image = CoefficientImage.from_array(
        load_image("pascal", 1).array, quality=75
    )
    by, bx = image.blocks_shape
    out = {}
    for scheme in ("puppies-n", "puppies-b", "puppies-c"):
        roi = RegionOfInterest(
            "whole",
            Rect(0, 0, by * 8, bx * 8),
            PrivacySettings.for_level(PrivacyLevel.MEDIUM),
            scheme=scheme,
        )
        key = generate_private_key(roi.matrix_id, f"rand/{scheme}")
        perturbed, public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        out[scheme] = (perturbed, public.regions[0])
    return image, out


class TestRandomnessAnalysis:
    def test_original_dc_is_structured(self, protected_by_scheme):
        image, variants = protected_by_scheme
        _p, region = variants["puppies-b"]
        report = analyze_region_randomness(image, region)
        assert report.serial_correlation > 0.5  # natural-image smoothness
        assert not report.looks_random

    def test_naive_scheme_inherits_structure(self, protected_by_scheme):
        _image, variants = protected_by_scheme
        perturbed, region = variants["puppies-n"]
        report = analyze_region_randomness(perturbed, region)
        # One constant added to every DC: structure fully preserved.
        assert report.serial_correlation > 0.5
        assert not report.looks_random

    @pytest.mark.parametrize("scheme", ["puppies-b", "puppies-c"])
    def test_cycling_schemes_whiten_dc(self, protected_by_scheme, scheme):
        _image, variants = protected_by_scheme
        perturbed, region = variants[scheme]
        report = analyze_region_randomness(perturbed, region)
        assert abs(report.serial_correlation) < 0.3
        assert report.looks_random

    def test_entropy_increases_under_cycling(self, protected_by_scheme):
        image, variants = protected_by_scheme
        _p, region = variants["puppies-b"]
        base = analyze_region_randomness(image, region).entropy_bits
        perturbed, region_b = variants["puppies-b"]
        whitened = analyze_region_randomness(
            perturbed, region_b
        ).entropy_bits
        assert whitened > base + 1.0

    def test_degenerate_region_handled(self):
        flat = CoefficientImage.from_array(
            np.full((16, 16, 3), 128, dtype=np.uint8)
        )
        roi = RegionOfInterest("r", Rect(0, 0, 16, 16))
        key = generate_private_key(roi.matrix_id, "o")
        _perturbed, public = perturb_regions(
            flat, [roi], {roi.matrix_id: key}
        )
        report = analyze_region_randomness(flat, public.regions[0])
        assert np.isfinite(report.entropy_bits)
