"""ROI recommendation geometry and public-parameter accounting tests."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.params import (
    BITS_PER_INDEX_ENTRY,
    REGION_HEADER_BYTES,
    ImagePublicData,
    RegionParams,
)
from repro.core.perturb import perturb_regions
from repro.core.policy import DEFAULT_PRIVACY
from repro.core.roi import (
    RegionOfInterest,
    align_and_disjoin,
    recommend_rois,
    validate_rois,
)
from repro.util.errors import ReproError, RoiError
from repro.util.rect import Rect


class TestAlignAndDisjoin:
    def test_output_aligned_and_disjoint(self):
        rects = [Rect(3, 5, 20, 20), Rect(15, 15, 20, 20), Rect(50, 2, 9, 9)]
        pieces = align_and_disjoin(rects, 100, 100)
        for piece in pieces:
            assert piece.is_aligned(8)
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert not a.intersects(b)

    def test_union_covers_inputs(self):
        rects = [Rect(3, 5, 20, 20), Rect(15, 15, 20, 20)]
        pieces = align_and_disjoin(rects, 100, 100)
        for rect in rects:
            for y in (rect.y, rect.y2 - 1):
                for x in (rect.x, rect.x2 - 1):
                    assert any(p.contains_point(y, x) for p in pieces)

    def test_clips_to_padded_bounds(self):
        pieces = align_and_disjoin([Rect(90, 90, 50, 50)], 100, 100)
        padded = Rect(0, 0, 104, 104)
        for piece in pieces:
            assert padded.contains(piece)

    def test_fully_outside_dropped(self):
        assert align_and_disjoin([Rect(500, 500, 10, 10)], 100, 100) == []


class TestRecommendRois:
    def test_produces_valid_regions(self):
        detections = [Rect(10, 10, 30, 30), Rect(25, 25, 30, 30)]
        rois = recommend_rois(detections, 100, 100)
        validate_rois(rois, (13, 13))
        assert all(roi.scheme == "puppies-c" for roi in rois)
        assert all(roi.settings == DEFAULT_PRIVACY for roi in rois)

    def test_unique_ids_and_matrix_ids(self):
        rois = recommend_rois(
            [Rect(0, 0, 20, 20), Rect(40, 40, 20, 20)], 100, 100
        )
        ids = [roi.region_id for roi in rois]
        assert len(set(ids)) == len(ids)
        matrix_ids = [roi.matrix_id for roi in rois]
        assert len(set(matrix_ids)) == len(matrix_ids)

    def test_merge_clusters_mode(self):
        rois = recommend_rois(
            [Rect(10, 10, 20, 20), Rect(20, 20, 20, 20)],
            100,
            100,
            merge_clusters=True,
        )
        assert len(rois) == 1

    def test_recommended_rois_perturbable(self, noise_image):
        rois = recommend_rois(
            [Rect(5, 5, 25, 30), Rect(20, 28, 20, 20)],
            noise_image.height,
            noise_image.width,
        )
        keys = {
            roi.matrix_id: generate_private_key(roi.matrix_id, "o")
            for roi in rois
        }
        perturbed, _public = perturb_regions(noise_image, rois, keys)
        assert not perturbed.coefficients_equal(noise_image)


class TestValidateRois:
    def test_accepts_valid(self):
        rois = [
            RegionOfInterest("a", Rect(0, 0, 16, 16)),
            RegionOfInterest("b", Rect(24, 24, 8, 8)),
        ]
        validate_rois(rois, (8, 8))

    def test_rejects_overlap(self):
        rois = [
            RegionOfInterest("a", Rect(0, 0, 16, 16)),
            RegionOfInterest("b", Rect(8, 8, 16, 16)),
        ]
        with pytest.raises(RoiError):
            validate_rois(rois, (8, 8))


class TestRegionParams:
    def _region(self, noise_image, scheme="puppies-z"):
        roi = RegionOfInterest(
            "r0", Rect(8, 8, 24, 24), DEFAULT_PRIVACY, scheme=scheme
        )
        key = generate_private_key(roi.matrix_id, "o")
        _perturbed, public = perturb_regions(
            noise_image, [roi], {roi.matrix_id: key}
        )
        return public.regions[0], public

    def test_block_rect_conversion(self, noise_image):
        region, _ = self._region(noise_image)
        assert region.block_rect == Rect(1, 1, 3, 3)
        assert region.n_blocks == 9

    def test_unaligned_rect_rejected(self):
        region = RegionParams(
            region_id="x",
            rect=Rect(1, 0, 8, 8),
            scheme="puppies-c",
            settings=DEFAULT_PRIVACY,
            matrix_id="m",
            wind=[],
            zind=[],
        )
        with pytest.raises(ReproError):
            _ = region.block_rect

    def test_size_accounting_components(self, noise_image):
        region, _ = self._region(noise_image)
        base = region.public_size_bytes(
            include_zind=False, include_transform_support=False
        )
        assert base == REGION_HEADER_BYTES
        with_zind = region.public_size_bytes(
            include_zind=True, include_transform_support=False
        )
        index_bits = region.zind_entries() * BITS_PER_INDEX_ENTRY
        bitmap_bits = sum(mask.size for mask in region.zind)
        expected_zind = 1 + (min(index_bits, bitmap_bits) + 7) // 8
        assert with_zind == base + expected_zind
        full = region.public_size_bytes()
        assert full >= with_zind

    def test_dense_index_sets_switch_to_bitmap(self, noise_image):
        # A region where every coefficient wrapped must cost no more than
        # a bitmap, never 28 bits per entry.
        import numpy as np

        region, _ = self._region(noise_image, scheme="puppies-c")
        region.wind = [np.ones_like(mask) for mask in region.wind]
        n_bits = sum(mask.size for mask in region.wind)
        size = region.public_size_bytes(include_zind=False)
        assert size <= REGION_HEADER_BYTES + 1 + (n_bits + 7) // 8

    def test_wind_entries_counted(self, noise_image):
        region, _ = self._region(noise_image, scheme="puppies-c")
        # With medium privacy, DC perturbations wrap about half the time.
        assert region.wind_entries() > 0

    def test_image_public_data_queries(self, noise_image):
        region, public = self._region(noise_image)
        assert public.region_by_id("r0") is region
        assert public.regions_for_matrix(region.matrix_id) == [region]
        with pytest.raises(ReproError):
            public.region_by_id("nope")
        assert public.params_size_bytes() > 16
