"""Equivalence tests: vectorized entropy codec vs the scalar reference.

The fast path in :mod:`repro.jpeg.fastentropy` must be *bit-exact* with
the per-bit scalar coder it replaces: identical stream bytes out of the
encoder, identical coefficients out of the decoder, identical failure
semantics (bit-consumption on error) so salvage resyncs at the same
byte, and byte-identical full containers under every scheme. These tests
pin all of that, plus the entropy-layer bugfixes that rode along (exact
magnitude categories, ZRL overflow detection, the salvage resync
off-by-one).
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.reconstruct import reconstruct_regions
from repro.core.roi import recommend_rois
from repro.jpeg import codec, fastentropy, rle
from repro.jpeg.coefficients import CoefficientImage
from repro.jpeg.codec import decode_image, encode_image
from repro.jpeg.huffman import (
    DEFAULT_AC_TABLE,
    DEFAULT_DC_TABLE,
    EOB,
    ZRL,
    HuffmanTable,
    optimized_tables,
)
from repro.util.bitio import BitReader, BitWriter, pack_bits_msb
from repro.util.errors import BitstreamError, CodecError
from repro.util.rect import Rect


@contextmanager
def use_backend(name: str):
    previous = codec.set_entropy_backend(name)
    try:
        yield
    finally:
        codec.set_entropy_backend(previous)


def random_zigzag(
    rng: np.random.Generator, n_blocks: int, density: float = 0.15
) -> np.ndarray:
    """Sparse random coefficient blocks shaped like quantized JPEG data."""
    zigzag = np.zeros((n_blocks, 64), dtype=np.int32)
    mask = rng.random((n_blocks, 64)) < density
    zigzag[mask] = rng.integers(-255, 256, int(mask.sum()))
    zigzag[:, 0] = rng.integers(-512, 512, n_blocks)
    return zigzag


def stream_freqs(zigzag: np.ndarray):
    """Per-stream symbol frequencies, as the optimizer would gather."""
    dc_freqs: dict = {}
    ac_freqs: dict = {}
    for diff in rle.dc_differences(zigzag[:, 0]):
        size = rle.magnitude_category(int(diff))
        dc_freqs[size] = dc_freqs.get(size, 0) + 1
    for block in zigzag:
        for symbol, _ in rle.ac_symbols(block[1:]):
            ac_freqs[symbol] = ac_freqs.get(symbol, 0) + 1
    return dc_freqs, ac_freqs


# ---------------------------------------------------------------------------
# Stream-level equivalence
# ---------------------------------------------------------------------------

class TestStreamEquivalence:
    @pytest.mark.parametrize("density", [0.0, 0.05, 0.3, 0.9])
    def test_encoders_byte_identical_default_tables(self, rng, density):
        for _ in range(6):
            zigzag = random_zigzag(rng, int(rng.integers(1, 60)), density)
            scalar = codec._encode_channel_stream_scalar(
                zigzag, DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
            )
            fast = fastentropy.encode_channel_stream(
                zigzag, DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
            )
            assert fast == scalar

    def test_decoders_invert_both_encoders(self, rng):
        for _ in range(6):
            zigzag = random_zigzag(rng, int(rng.integers(1, 60)))
            data = fastentropy.encode_channel_stream(
                zigzag, DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
            )
            for decode in (
                fastentropy.decode_channel_stream,
                codec._decode_channel_stream_scalar,
            ):
                out = decode(
                    data, zigzag.shape[0], DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
                )
                np.testing.assert_array_equal(out, zigzag)

    def test_equivalence_with_optimized_tables(self, rng):
        for _ in range(6):
            zigzag = random_zigzag(rng, int(rng.integers(1, 60)), 0.2)
            dc, ac = optimized_tables(*stream_freqs(zigzag))
            scalar = codec._encode_channel_stream_scalar(zigzag, dc, ac)
            fast = fastentropy.encode_channel_stream(zigzag, dc, ac)
            assert fast == scalar
            out = fastentropy.decode_channel_stream(
                fast, zigzag.shape[0], dc, ac
            )
            np.testing.assert_array_equal(out, zigzag)

    def test_missing_symbol_raises_not_garbage(self):
        # A table missing a needed symbol must raise, like the scalar
        # encoder's KeyError path — not silently emit a zero-length code.
        zigzag = np.zeros((1, 64), dtype=np.int32)
        zigzag[0, 0] = 5  # DC size 3
        dc = HuffmanTable(((0, 1), (1, 2), (2, 2)))  # no size-3 symbol
        with pytest.raises(CodecError):
            fastentropy.encode_channel_stream(zigzag, dc, DEFAULT_AC_TABLE)


# ---------------------------------------------------------------------------
# Container-level equivalence (the tentpole acceptance bar)
# ---------------------------------------------------------------------------

class TestContainerEquivalence:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_containers_byte_identical_across_backends(
        self, noise_rgb, optimize
    ):
        image = CoefficientImage.from_array(noise_rgb, quality=75)
        with use_backend("fast"):
            fast_bytes = encode_image(image, optimize=optimize)
        with use_backend("scalar"):
            scalar_bytes = encode_image(image, optimize=optimize)
        assert fast_bytes == scalar_bytes
        # Cross-decode: each backend inverts the other's container.
        with use_backend("fast"):
            assert decode_image(scalar_bytes).coefficients_equal(image)
        with use_backend("scalar"):
            assert decode_image(fast_bytes).coefficients_equal(image)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_schemes_roundtrip_on_fast_path(self, smooth_rgb, scheme):
        image = CoefficientImage.from_array(smooth_rgb, quality=75)
        rois = recommend_rois(
            [Rect(8, 8, 24, 24)], image.height, image.width, scheme=scheme
        )
        keys = {
            matrix_id: generate_private_key(matrix_id, "fast-test")
            for roi in rois
            for matrix_id in roi.matrix_ids()
        }
        perturbed, public = perturb_regions(image, rois, keys)
        with use_backend("fast"):
            stored = encode_image(perturbed, optimize=True)
        with use_backend("scalar"):
            assert encode_image(perturbed, optimize=True) == stored
        with use_backend("fast"):
            recovered = reconstruct_regions(
                decode_image(stored), public, keys
            )
        assert recovered.coefficients_equal(image)

    def test_env_var_and_setter_control_backend(self, monkeypatch):
        assert codec.entropy_backend() in codec.ENTROPY_BACKENDS
        previous = codec.set_entropy_backend("scalar")
        try:
            assert codec.entropy_backend() == "scalar"
        finally:
            codec.set_entropy_backend(previous)
        with pytest.raises(ValueError):
            codec.set_entropy_backend("simd")


# ---------------------------------------------------------------------------
# Failure semantics + salvage parity
# ---------------------------------------------------------------------------

class TestSalvageParity:
    def test_corrupted_streams_salvage_identically(self, rng):
        zigzag = random_zigzag(rng, 40, 0.2)
        data = bytearray(
            codec._encode_channel_stream_scalar(
                zigzag, DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
            )
        )
        for _ in range(25):
            corrupt = bytearray(data)
            position = int(rng.integers(0, len(corrupt)))
            corrupt[position] ^= int(rng.integers(1, 256))
            results = {}
            for name in codec.ENTROPY_BACKENDS:
                with use_backend(name):
                    results[name] = codec._decode_channel_salvage(
                        bytes(corrupt), 40, DEFAULT_DC_TABLE,
                        DEFAULT_AC_TABLE,
                    )
            np.testing.assert_array_equal(
                results["fast"][0], results["scalar"][0]
            )
            np.testing.assert_array_equal(
                results["fast"][1], results["scalar"][1]
            )

    def test_failure_consumes_identical_bits(self):
        # Undecodable prefix: both readers must charge exactly 16 bits,
        # and exhaustion must charge to the stream end — the resync scan
        # start depends on it.
        dc = HuffmanTable(((0, 2), (1, 2), (2, 2)))  # '11' undecodable
        data = b"\xff\xff\xff"
        fast = fastentropy.FastReader(data)
        with pytest.raises(BitstreamError):
            fast.decode_symbol(dc.decode_lut())
        scalar = BitReader(data)
        with pytest.raises(BitstreamError):
            dc.decode_symbol(scalar)
        assert fast.bits_consumed == scalar.bits_consumed == 16

        short = b"\xff"
        fast = fastentropy.FastReader(short)
        with pytest.raises(BitstreamError):
            fast.decode_symbol(dc.decode_lut())
        scalar = BitReader(short)
        with pytest.raises(BitstreamError):
            dc.decode_symbol(scalar)
        assert fast.bits_consumed == scalar.bits_consumed == 8

    @pytest.mark.parametrize("backend", codec.ENTROPY_BACKENDS)
    def test_salvage_resyncs_at_byte_aligned_failure(self, backend):
        """Regression: the resync scan must include the failure byte.

        With incomplete tables an undecodable prefix consumes exactly 16
        bits, so the first corrupt block dies precisely on a byte
        boundary and the clean tail starts at byte 2. The old
        ``bits // 8 + 1`` scan start skipped that byte and recovered
        nothing; ``ceil(bits / 8)`` recovers the whole tail.
        """
        dc = HuffmanTable(((0, 2), (1, 2), (2, 2)))
        ac = HuffmanTable(((EOB, 2), (0x01, 2)))
        tail_zigzag = np.zeros((3, 64), dtype=np.int32)
        tail_zigzag[:, 0] = [1, 3, 6]  # DC diffs 1, 2, 3
        tail_zigzag[:, 1] = 1
        tail = codec._encode_channel_stream_scalar(tail_zigzag, dc, ac)
        # Two bytes of 1-bits: an undecodable 16-bit prefix, failing
        # exactly at the byte-2 boundary where the healthy tail begins.
        data = b"\xff\xff" + tail
        with use_backend(backend):
            zigzag, damaged = codec._decode_channel_salvage(data, 4, dc, ac)
        assert damaged.all()  # nothing after a break is *certified*
        np.testing.assert_array_equal(zigzag[0], np.zeros(64))
        np.testing.assert_array_equal(zigzag[1:, 0], [1, 3, 6])
        np.testing.assert_array_equal(zigzag[1:, 1], [1, 1, 1])

    @pytest.mark.parametrize("backend", codec.ENTROPY_BACKENDS)
    def test_zrl_overflow_raises(self, backend):
        # DC size 0, then four ZRLs = 64 zeros: past the 63 AC slots.
        writer = BitWriter()
        DEFAULT_DC_TABLE.encode_symbol(writer, 0)
        for _ in range(4):
            DEFAULT_AC_TABLE.encode_symbol(writer, ZRL)
        data = writer.getvalue()
        with use_backend(backend):
            with pytest.raises(CodecError):
                codec._decode_channel_stream(
                    data, 1, DEFAULT_DC_TABLE, DEFAULT_AC_TABLE
                )


# ---------------------------------------------------------------------------
# Entropy-layer bugfix pins
# ---------------------------------------------------------------------------

class TestMagnitudeCategories:
    def test_exact_at_power_of_two_boundaries(self):
        values = []
        for exponent in range(31):
            power = 1 << exponent
            values += [power - 1, power, power + 1]
        values += [2**31 - 1, -(2**31) + 1]
        values = np.array(
            [v for v in values for v in (v, -v)], dtype=np.int64
        )
        expected = [int(abs(int(v))).bit_length() for v in values]
        np.testing.assert_array_equal(
            rle.magnitude_categories(values), expected
        )
        for value in values:
            assert rle.magnitude_category(int(value)) == int(
                abs(int(value))
            ).bit_length()

    def test_zero_and_small(self):
        np.testing.assert_array_equal(
            rle.magnitude_categories(np.array([0, 1, -1, 2, -3])),
            [0, 1, 1, 2, 2],
        )


class TestPackBitsMsb:
    def test_matches_bitwriter_on_random_fields(self, rng):
        for _ in range(20):
            n = int(rng.integers(0, 200))
            lengths = rng.integers(0, 26, n)
            values = np.array(
                [
                    int(rng.integers(0, 1 << length)) if length else 0
                    for length in lengths
                ],
                dtype=np.int64,
            )
            writer = BitWriter()
            for value, length in zip(values, lengths):
                writer.write_bits(int(value), int(length))
            assert pack_bits_msb(values, lengths) == writer.getvalue()

    def test_rejects_bad_fields(self):
        with pytest.raises(BitstreamError):
            pack_bits_msb(np.array([0]), np.array([-1]))
        with pytest.raises(BitstreamError):
            pack_bits_msb(np.array([4]), np.array([2]))
        with pytest.raises(BitstreamError):
            pack_bits_msb(np.array([0]), np.array([26]))
        with pytest.raises(BitstreamError):
            pack_bits_msb(np.array([[1]]), np.array([[1]]))
        assert pack_bits_msb(np.array([], dtype=np.int64),
                             np.array([], dtype=np.int64)) == b""
