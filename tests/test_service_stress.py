"""Threaded stress tests for the serving layer.

ISSUE-5 coverage task: uploads plus mixed ``download`` /
``download_transformed`` traffic across >= 8 threads, asserting

* no lost writes (every uploaded id is present and serves its bytes),
* no cross-request ``transform_params`` bleed,
* bit-identical results with the caches enabled vs disabled.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.roi import RegionOfInterest
from repro.jpeg.codec import encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.service import PspService
from repro.transforms import Rotate90
from repro.util.rect import Rect

N_THREADS = 8
N_BASES = 4


@pytest.fixture(scope="module")
def corpus():
    """Distinct small protected images: (perturbed, public) per base."""
    rng = np.random.default_rng(5)
    bases = []
    for index in range(N_BASES):
        array = rng.integers(0, 256, (32, 40, 3), dtype=np.uint8)
        image = CoefficientImage.from_array(array, quality=75)
        roi = RegionOfInterest(f"r{index}", Rect(0, 0, 16, 16))
        keys = {
            matrix_id: generate_private_key(matrix_id, "stress-owner")
            for matrix_id in roi.matrix_ids()
        }
        bases.append(perturb_regions(image, [roi], keys))
    return bases


def test_stress_uploads_and_mixed_downloads(corpus):
    """Interleaved uploads and reads from 8 threads, then a cross-read."""
    service = PspService(workers=4, queue_cap=128)
    errors = []
    uploads_per_thread = 3
    barrier = threading.Barrier(N_THREADS)
    expected_planes = {
        turns: {
            index: Rotate90(turns).apply(perturbed.to_sample_planes())
            for index, (perturbed, _public) in enumerate(corpus)
        }
        for turns in (1, 2)
    }

    def worker(tid):
        try:
            rng = np.random.default_rng(tid)
            own_ids = []
            for k in range(uploads_per_thread):
                base_index = (tid + k) % N_BASES
                perturbed, public = corpus[base_index]
                image_id = f"t{tid}-{k}"
                service.upload(image_id, perturbed, public)
                own_ids.append((image_id, base_index))
                # Reads of this thread's own images interleave with the
                # other threads' uploads — the concurrent-mutation case
                # lock striping must survive.
                image_id, base_index = own_ids[
                    int(rng.integers(len(own_ids)))
                ]
                perturbed = corpus[base_index][0]
                assert service.download(image_id).coefficients_equal(
                    perturbed
                )
                turns = 1 + (tid % 2)
                planes, public_t = service.download_transformed(
                    image_id, Rotate90(turns)
                )
                assert (
                    public_t.transform_params == Rotate90(turns).to_params()
                )
                for got, want in zip(
                    planes, expected_planes[turns][base_index]
                ):
                    np.testing.assert_array_equal(got, want)
                assert service.storage_size(image_id) > 0
                assert image_id in service.image_ids()
            barrier.wait(timeout=30)
            # Cross-thread read phase over every uploaded id.
            all_ids = [
                (f"t{t}-{k}", (t + k) % N_BASES)
                for t in range(N_THREADS)
                for k in range(uploads_per_thread)
            ]
            for _ in range(6):
                image_id, base_index = all_ids[
                    int(rng.integers(len(all_ids)))
                ]
                perturbed = corpus[base_index][0]
                if rng.random() < 0.5:
                    assert service.download(
                        image_id
                    ).coefficients_equal(perturbed)
                else:
                    turns = int(rng.integers(1, 3))
                    planes, public_t = service.download_transformed(
                        image_id, Rotate90(turns)
                    )
                    assert (
                        public_t.transform_params
                        == Rotate90(turns).to_params()
                    )
                    for got, want in zip(
                        planes, expected_planes[turns][base_index]
                    ):
                        np.testing.assert_array_equal(got, want)
        except Exception as error:  # surfaced after the join
            errors.append(f"thread {tid}: {type(error).__name__}: {error}")

    threads = [
        threading.Thread(target=worker, args=(tid,), daemon=True)
        for tid in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.close()

    assert not errors, "\n".join(errors)
    # No lost writes: every id every thread uploaded is served.
    assert sorted(service.image_ids()) == sorted(
        f"t{t}-{k}"
        for t in range(N_THREADS)
        for k in range(uploads_per_thread)
    )
    # No transform record ever leaked into the stored public bytes.
    for image_id in service.image_ids():
        assert service.public_data(image_id).transform_params is None


def test_cache_enabled_vs_disabled_bit_identical(corpus):
    """The cache is a pure accelerator: outputs are byte-identical."""
    cached = PspService(workers=2)
    uncached = PspService(
        workers=2, decode_cache_bytes=0, derivative_cache_bytes=0
    )
    try:
        for index, (perturbed, public) in enumerate(corpus):
            cached.upload(f"img-{index}", perturbed, public)
            uncached.upload(f"img-{index}", perturbed, public)
        for index in range(N_BASES):
            image_id = f"img-{index}"
            for _ in range(2):  # second pass hits the warm cache
                a = cached.download(image_id)
                b = uncached.download(image_id)
                assert a.coefficients_equal(b)
                assert encode_image(a, optimize=True) == encode_image(
                    b, optimize=True
                )
                planes_a, public_a = cached.download_transformed(
                    image_id, Rotate90(1)
                )
                planes_b, public_b = uncached.download_transformed(
                    image_id, Rotate90(1)
                )
                for got, want in zip(planes_a, planes_b):
                    np.testing.assert_array_equal(got, want)
                assert (
                    public_a.transform_params == public_b.transform_params
                )
        assert cached.decode_cache.hits > 0
        assert uncached.decode_cache.hits == 0
    finally:
        cached.close()
        uncached.close()
