"""RNG derivation and summary statistics tests."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, rng_from_key
from repro.util.stats import summarize


class TestRng:
    def test_same_key_same_stream(self):
        a = rng_from_key("alpha").integers(0, 1 << 30, 16)
        b = rng_from_key("alpha").integers(0, 1 << 30, 16)
        assert np.array_equal(a, b)

    def test_different_keys_different_streams(self):
        a = rng_from_key("alpha").integers(0, 1 << 30, 16)
        b = rng_from_key("beta").integers(0, 1 << 30, 16)
        assert not np.array_equal(a, b)

    def test_derive_rng_composes_parts(self):
        a = derive_rng("base", "x", 1).integers(0, 1 << 30, 8)
        b = rng_from_key("base/x/1").integers(0, 1 << 30, 8)
        assert np.array_equal(a, b)

    def test_derive_rng_no_parts(self):
        a = derive_rng("solo").integers(0, 1 << 30, 4)
        b = rng_from_key("solo").integers(0, 1 << 30, 4)
        assert np.array_equal(a, b)


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.min == 1.0
        assert s.max == 4.0
        assert s.count == 4

    def test_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.mean == s.median == s.min == s.max == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_row_renders_five_columns(self):
        row = summarize([1, 2, 3]).row()
        assert len(row.split()) == 5
