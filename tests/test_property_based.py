"""Property-based tests (hypothesis) on the core invariants.

These pin the algebra the whole system rests on: Lemma III.1's modular
round trip, entropy-coding round trips, zigzag/rect geometry, Huffman
prefix codes and the Algorithm 3 range structure — for *arbitrary* inputs,
not just the fixtures.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perturb import wrap_add, wrap_subtract
from repro.core.policy import PrivacySettings, range_matrix
from repro.jpeg import rle
from repro.jpeg.huffman import build_table
from repro.jpeg.zigzag import block_to_zigzag, zigzag_to_block
from repro.util.bitio import BitReader, BitWriter
from repro.util.rect import Rect, _union_area, split_into_disjoint

coefficients = st.integers(min_value=-1024, max_value=1023)
perturbations = st.integers(min_value=0, max_value=2047)


class TestLemmaIII1:
    @given(
        st.lists(coefficients, min_size=1, max_size=64),
        st.lists(perturbations, min_size=1, max_size=64),
    )
    def test_wrap_roundtrip_is_identity(self, bs, ps):
        n = min(len(bs), len(ps))
        b = np.array(bs[:n], dtype=np.int64)
        p = np.array(ps[:n], dtype=np.int64)
        e, _w = wrap_add(b, p)
        assert np.array_equal(wrap_subtract(e, p), b)

    @given(
        st.lists(coefficients, min_size=1, max_size=64),
        st.lists(perturbations, min_size=1, max_size=64),
    )
    def test_encrypted_stays_in_jpeg_range(self, bs, ps):
        n = min(len(bs), len(ps))
        e, _w = wrap_add(
            np.array(bs[:n], dtype=np.int64),
            np.array(ps[:n], dtype=np.int64),
        )
        assert e.min() >= -1024 and e.max() <= 1023

    @given(coefficients, perturbations)
    def test_wrap_flag_equals_carry(self, b, p):
        e, w = wrap_add(np.array([b]), np.array([p]))
        assert int(w[0]) == (b + p + 1024) // 2048
        # The delta identity the shadow ROI relies on: e - b = p - 2048w.
        assert int(e[0]) - b == p - 2048 * int(w[0])


class TestMagnitudeCoding:
    @given(st.integers(min_value=-4095, max_value=4095))
    def test_roundtrip(self, value):
        size = rle.magnitude_category(value)
        assert rle.decode_magnitude(rle.encode_magnitude(value, size), size) == value

    @given(st.integers(min_value=-4095, max_value=4095).filter(lambda v: v))
    def test_bits_fit_in_category(self, value):
        size = rle.magnitude_category(value)
        bits = rle.encode_magnitude(value, size)
        assert 0 <= bits < (1 << size)


class TestAcSymbolLayer:
    @given(
        st.lists(
            st.integers(min_value=-1024, max_value=1023), min_size=63,
            max_size=63
        ),
        st.floats(min_value=0.0, max_value=0.97),
    )
    @settings(max_examples=50)
    def test_rle_roundtrip(self, values, zero_fraction):
        ac = np.array(values, dtype=np.int32)
        n_zero = int(zero_fraction * 63)
        ac[:n_zero] = 0
        decoded = rle.decode_ac_block(iter(rle.ac_symbols(ac)))
        assert np.array_equal(decoded, ac)


class TestBitIo:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 20) - 1),
                st.integers(min_value=20, max_value=24),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_writer_reader_roundtrip(self, fields):
        writer = BitWriter()
        for value, width in fields:
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue())
        for value, width in fields:
            assert reader.read_bits(width) == value


class TestHuffman:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=1, max_value=10_000),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_codes_decode_uniquely(self, freqs):
        table = build_table(freqs)
        symbols = sorted(freqs)[:20]
        writer = BitWriter()
        for s in symbols:
            table.encode_symbol(writer, s)
        reader = BitReader(writer.getvalue())
        assert [table.decode_symbol(reader) for _ in symbols] == symbols

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=1, max_value=10_000),
            min_size=2,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_kraft_inequality_holds(self, freqs):
        table = build_table(freqs)
        kraft = sum(2.0 ** -length for _, length in table.lengths)
        assert kraft <= 1.0 + 1e-12


class TestZigzag:
    @given(st.lists(st.integers(-1000, 1000), min_size=64, max_size=64))
    def test_involution(self, values):
        block = np.array(values).reshape(8, 8)
        assert np.array_equal(
            zigzag_to_block(block_to_zigzag(block)), block
        )


rect_strategy = st.builds(
    Rect,
    y=st.integers(0, 50),
    x=st.integers(0, 50),
    h=st.integers(1, 30),
    w=st.integers(1, 30),
)


class TestRectProperties:
    @given(st.lists(rect_strategy, min_size=1, max_size=8))
    @settings(max_examples=60)
    def test_split_is_disjoint_and_area_preserving(self, rects):
        pieces = split_into_disjoint(rects)
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert not a.intersects(b)
        assert _union_area(pieces) == _union_area(rects)

    @given(rect_strategy, st.sampled_from([4, 8, 16]))
    def test_alignment_covers_and_is_aligned(self, rect, block):
        aligned = rect.aligned_to(block)
        assert aligned.is_aligned(block)
        assert aligned.contains(rect)

    @given(rect_strategy, rect_strategy)
    def test_intersection_symmetric(self, a, b):
        assert a.intersection(b) == b.intersection(a)
        assert a.intersects(b) == b.intersects(a)


class TestRangeMatrixProperties:
    @given(
        st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048]),
        st.integers(min_value=1, max_value=64),
    )
    def test_structure(self, min_range, n_perturbed):
        q = range_matrix(
            PrivacySettings(min_range=min_range, n_perturbed=n_perturbed)
        )
        assert q.shape == (64,)
        # Perturbed prefix: powers of two, floored at min_range (except
        # the always-full first entry), non-increasing.
        prefix = q[:n_perturbed]
        assert (np.diff(prefix) <= 0).all()
        for value in prefix:
            assert value & (value - 1) == 0
        # Beyond K: exactly 1 (no perturbation).
        assert (q[n_perturbed:] == 1).all()
