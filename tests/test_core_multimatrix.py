"""Section IV-D extension: multiple private matrices per region."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions, perturbation_for_blocks
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.reconstruct import reconstruct_regions
from repro.core.roi import RegionOfInterest
from repro.core.serialization import (
    deserialize_public_data,
    serialize_public_data,
)
from repro.core.shadow import reconstruct_transformed
from repro.core.system import SharingSession
from repro.jpeg.coefficients import CoefficientImage
from repro.transforms import Scale
from repro.util.errors import KeyMismatchError, RoiError
from repro.util.rect import Rect

MEDIUM = PrivacySettings.for_level(PrivacyLevel.MEDIUM)


def _multi_roi(n_matrices, scheme="puppies-c"):
    return RegionOfInterest(
        "multi",
        Rect(8, 8, 32, 40),
        MEDIUM,
        scheme=scheme,
        n_matrices=n_matrices,
    )


def _keys_for(roi, owner="owner"):
    return {
        matrix_id: generate_private_key(matrix_id, owner)
        for matrix_id in roi.matrix_ids()
    }


class TestRoiMatrixIds:
    def test_single_matrix_default(self):
        roi = RegionOfInterest("r", Rect(0, 0, 8, 8))
        assert roi.matrix_ids() == ["matrix-r"]

    def test_multi_matrix_ids(self):
        roi = _multi_roi(3)
        assert roi.matrix_ids() == [
            "matrix-multi.0",
            "matrix-multi.1",
            "matrix-multi.2",
        ]

    def test_zero_matrices_rejected(self):
        with pytest.raises(RoiError):
            RegionOfInterest("r", Rect(0, 0, 8, 8), n_matrices=0)


class TestMultiKeyPerturbation:
    def test_groups_use_distinct_perturbations(self):
        keys = [generate_private_key(f"m{i}", "o") for i in range(3)]
        p, _ = perturbation_for_blocks(keys, MEDIUM, "puppies-b", 12)
        # Blocks 0,1,2 belong to different groups: AC rows must differ.
        assert not np.array_equal(p[0, 1:], p[1, 1:])
        assert not np.array_equal(p[1, 1:], p[2, 1:])
        # Block 3 cycles back to group 0 with the *next* DC entry.
        assert np.array_equal(p[3, 1:], p[0, 1:])
        assert p[3, 0] == keys[0].p_dc.normalized[1]

    def test_single_key_unchanged_by_refactor(self):
        key = generate_private_key("m", "o")
        p_single, _ = perturbation_for_blocks(key, MEDIUM, "puppies-b", 70)
        p_list, _ = perturbation_for_blocks([key], MEDIUM, "puppies-b", 70)
        assert np.array_equal(p_single, p_list)
        assert p_single[65, 0] == key.p_dc.normalized[1]  # k mod 64 cycle

    def test_empty_key_list_rejected(self):
        from repro.util.errors import ReproError

        with pytest.raises(ReproError):
            perturbation_for_blocks([], MEDIUM, "puppies-b", 4)


class TestMultiKeyRoundTrip:
    @pytest.mark.parametrize("scheme", ["puppies-b", "puppies-c", "puppies-z"])
    @pytest.mark.parametrize("n_matrices", [2, 5])
    def test_exact_recovery(self, noise_image, scheme, n_matrices):
        roi = _multi_roi(n_matrices, scheme)
        keys = _keys_for(roi)
        perturbed, public = perturb_regions(noise_image, [roi], keys)
        assert public.regions[0].extra_matrix_ids == roi.matrix_ids()[1:]
        recovered = reconstruct_regions(perturbed, public, keys)
        assert recovered.coefficients_equal(noise_image)

    def test_partial_key_set_recovers_nothing(self, noise_image):
        roi = _multi_roi(3)
        keys = _keys_for(roi)
        perturbed, public = perturb_regions(noise_image, [roi], keys)
        partial = {roi.matrix_ids()[0]: keys[roi.matrix_ids()[0]]}
        recovered = reconstruct_regions(perturbed, public, partial)
        assert not recovered.coefficients_equal(noise_image)

    def test_missing_group_key_at_perturb_rejected(self, noise_image):
        roi = _multi_roi(3)
        keys = _keys_for(roi)
        del keys[roi.matrix_ids()[1]]
        with pytest.raises(KeyMismatchError):
            perturb_regions(noise_image, [roi], keys)

    def test_shadow_recovery_multikey(self, noise_image):
        roi = _multi_roi(4, "puppies-c")
        keys = _keys_for(roi)
        perturbed, public = perturb_regions(noise_image, [roi], keys)
        transform = Scale(48, 64)
        transformed = transform.apply(perturbed.to_sample_planes())
        recovered = reconstruct_transformed(
            transformed, transform, public, keys
        )
        truth = transform.apply(noise_image.to_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-7)

    def test_serialization_preserves_extra_ids(self, noise_image):
        roi = _multi_roi(3)
        keys = _keys_for(roi)
        _perturbed, public = perturb_regions(noise_image, [roi], keys)
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert rebuilt.regions[0].all_matrix_ids == roi.matrix_ids()
        assert sorted(rebuilt.matrix_ids()) == sorted(roi.matrix_ids())

    def test_end_to_end_session_with_multimatrix(self):
        rng = np.random.default_rng(9)
        photo = rng.integers(0, 256, (64, 96, 3), dtype=np.uint8)
        session = SharingSession("owner")
        roi = RegionOfInterest(
            "vault", Rect(16, 16, 32, 48), MEDIUM, n_matrices=4
        )
        session.share(
            "img", photo, [roi], grants={"trusted": roi.matrix_ids()}
        )
        reference = CoefficientImage.from_array(photo, quality=75)
        assert session.view("trusted", "img").coefficients_equal(reference)
        # The private part grew linearly with the matrix count.
        assert len(session.sender.keyring) == 4

    def test_more_matrices_more_secret_bits(self):
        """Section IV-D's claim: secure bits grow linearly in matrices."""
        roi_1 = _multi_roi(1)
        roi_4 = _multi_roi(4)
        keys_1 = _keys_for(roi_1)
        keys_4 = _keys_for(roi_4)
        bits_1 = sum(k.serialized_size_bytes() for k in keys_1.values())
        bits_4 = sum(k.serialized_size_bytes() for k in keys_4.values())
        assert bits_4 >= 4 * bits_1 - 4 * 8  # up to id-length slack
