"""Rectangle geometry tests (ROI splitting is privacy-critical)."""

import pytest

from repro.util.errors import RoiError
from repro.util.rect import (
    Rect,
    _union_area,
    merge_overlapping,
    split_into_disjoint,
)


class TestRectBasics:
    def test_degenerate_rect_rejected(self):
        with pytest.raises(RoiError):
            Rect(0, 0, 0, 5)
        with pytest.raises(RoiError):
            Rect(0, 0, 5, -1)

    def test_area_and_corners(self):
        r = Rect(2, 3, 4, 5)
        assert r.area == 20
        assert (r.y2, r.x2) == (6, 8)

    def test_contains_point_half_open(self):
        r = Rect(0, 0, 4, 4)
        assert r.contains_point(0, 0)
        assert r.contains_point(3, 3)
        assert not r.contains_point(4, 0)

    def test_contains_rect(self):
        outer = Rect(0, 0, 10, 10)
        assert outer.contains(Rect(2, 2, 3, 3))
        assert outer.contains(outer)
        assert not outer.contains(Rect(8, 8, 4, 4))

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 2, 2).intersection(Rect(5, 5, 2, 2)) is None

    def test_intersection_touching_edges_is_none(self):
        # Half-open rectangles that only touch do not intersect.
        assert Rect(0, 0, 2, 2).intersection(Rect(0, 2, 2, 2)) is None

    def test_intersection_overlap(self):
        inter = Rect(0, 0, 4, 4).intersection(Rect(2, 2, 4, 4))
        assert inter == Rect(2, 2, 2, 2)

    def test_union_bbox(self):
        assert Rect(0, 0, 2, 2).union_bbox(Rect(5, 5, 1, 1)) == Rect(
            0, 0, 6, 6
        )

    def test_slices_select_expected_region(self):
        import numpy as np

        arr = np.arange(42).reshape(6, 7)
        rows, cols = Rect(1, 2, 3, 4).slices()
        assert arr[rows, cols].shape == (3, 4)
        assert arr[rows, cols][0, 0] == arr[1, 2]

    def test_aligned_to_expands_outward(self):
        aligned = Rect(3, 9, 10, 5).aligned_to(8)
        assert aligned == Rect(0, 8, 16, 8)
        assert aligned.is_aligned(8)

    def test_aligned_rect_unchanged(self):
        r = Rect(8, 16, 8, 24)
        assert r.aligned_to(8) == r

    def test_scaled_covers_target(self):
        scaled = Rect(10, 10, 10, 10).scaled(0.5, 0.5)
        assert scaled.contains(Rect(5, 5, 5, 5))

    def test_clipped_outside_is_none(self):
        assert Rect(100, 100, 5, 5).clipped(50, 50) is None

    def test_clipped_partial(self):
        assert Rect(-2, -2, 6, 6).clipped(50, 50) == Rect(0, 0, 4, 4)


class TestSplitIntoDisjoint:
    def test_empty_input(self):
        assert split_into_disjoint([]) == []

    def test_single_rect_passthrough_area(self):
        r = Rect(1, 2, 3, 4)
        pieces = split_into_disjoint([r])
        assert _union_area(pieces) == r.area

    def test_overlapping_pair_disjoint_and_area_preserved(self):
        rects = [Rect(0, 0, 4, 4), Rect(2, 2, 4, 4)]
        pieces = split_into_disjoint(rects)
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert not a.intersects(b)
        assert _union_area(pieces) == _union_area(rects)

    def test_identical_rects_collapse(self):
        pieces = split_into_disjoint([Rect(0, 0, 8, 8)] * 3)
        assert _union_area(pieces) == 64

    def test_cross_shape(self):
        rects = [Rect(0, 3, 9, 3), Rect(3, 0, 3, 9)]
        pieces = split_into_disjoint(rects)
        assert _union_area(pieces) == 9 * 3 + 3 * 9 - 9
        for i, a in enumerate(pieces):
            for b in pieces[i + 1 :]:
                assert not a.intersects(b)

    def test_disjoint_inputs_union_preserved(self):
        rects = [Rect(0, 0, 2, 2), Rect(10, 10, 3, 3)]
        pieces = split_into_disjoint(rects)
        assert _union_area(pieces) == 4 + 9


class TestMergeOverlapping:
    def test_transitive_merge(self):
        rects = [Rect(0, 0, 4, 4), Rect(3, 3, 4, 4), Rect(6, 6, 4, 4)]
        merged = merge_overlapping(rects)
        assert merged == [Rect(0, 0, 10, 10)]

    def test_disjoint_preserved(self):
        rects = [Rect(0, 0, 2, 2), Rect(5, 5, 2, 2)]
        assert sorted(merge_overlapping(rects)) == sorted(rects)

    def test_empty(self):
        assert merge_overlapping([]) == []
