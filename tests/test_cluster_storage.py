"""Unit tests for disk-backed shard storage (no processes, no sockets).

Covers the durability contract of :mod:`repro.cluster.storage` at the
file level: append/commit/recover round-trips, torn-tail truncation,
committed-prefix rot accounting, segment roll + compaction, and the
protocol parity between the disk and in-memory implementations.
"""

from __future__ import annotations

import os
import struct
import zlib

import pytest

from repro.cluster.storage import (
    COMMIT_FILE,
    RECORD_FRAME,
    SEGMENT_HEADER,
    SEGMENT_MAGIC,
    SEGMENT_SUFFIX,
    SEGMENT_VERSION,
    DiskShardStorage,
    InMemoryShardStorage,
    iter_segment_records,
)
from repro.cluster.wire import ShardRecord
from repro.util.errors import ReproError


def _record(tag: str, size: int = 400) -> ShardRecord:
    return ShardRecord.create(
        (tag.encode() + b"-enc") * size, (tag.encode() + b"-pub") * 7
    )


def _store(tmp_path, **kwargs) -> DiskShardStorage:
    kwargs.setdefault("segment_bytes", 4096)
    return DiskShardStorage(str(tmp_path / "shard"), **kwargs)


class TestRoundTrip:
    def test_put_get_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        record = _record("a")
        assert store.put("img-a", record, False)
        got = store.get("img-a")
        assert got == record
        assert got.verify()
        store.close()

    def test_duplicate_put_respects_overwrite_flag(self, tmp_path):
        store = _store(tmp_path)
        assert store.put("img-a", _record("a"), False)
        assert not store.put("img-a", _record("b"), False)
        assert store.get("img-a") == _record("a")
        assert store.put("img-a", _record("b"), True)
        assert store.get("img-a") == _record("b")
        store.close()

    def test_len_ids_metadata_match_protocol(self, tmp_path):
        disk = _store(tmp_path)
        mem = InMemoryShardStorage()
        for tag in ("a", "b", "c"):
            record = _record(tag)
            disk.put(f"img-{tag}", record, False)
            mem.put(f"img-{tag}", record, False)
        assert len(disk) == len(mem) == 3
        assert sorted(disk.ids()) == sorted(mem.ids())
        assert sorted(disk.metadata()) == sorted(mem.metadata())
        disk.close()

    def test_records_survive_reopen(self, tmp_path):
        store = _store(tmp_path)
        records = {f"img-{i}": _record(str(i)) for i in range(10)}
        for image_id, record in records.items():
            store.put(image_id, record, False)
        store.close()
        reopened = _store(tmp_path)
        for image_id, record in records.items():
            got = reopened.get(image_id)
            assert got == record, image_id
            assert got.verify()
        assert reopened.stats()["recovered_records"] == 10
        reopened.close()

    def test_overwrite_survives_reopen_last_write_wins(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("old"), False)
        store.put("img-a", _record("new"), True)
        store.close()
        reopened = _store(tmp_path)
        assert reopened.get("img-a") == _record("new")
        assert len(reopened) == 1
        reopened.close()


class TestTornTail:
    def _segment_paths(self, store):
        return store.segment_files()

    def test_partial_frame_is_truncated_and_committed_survive(
        self, tmp_path
    ):
        store = _store(tmp_path)
        for index in range(5):
            store.put(f"img-{index}", _record(str(index)), False)
        path = self._segment_paths(store)[-1]
        store.close()
        # Simulate a crash mid-append: a frame header promising more
        # bytes than ever hit the disk.
        with open(path, "ab") as handle:
            handle.write(RECORD_FRAME.pack(10_000, 0xDEADBEEF))
            handle.write(b"only-a-few-bytes")
        before = os.path.getsize(path)
        store = _store(tmp_path)
        stats = store.stats()
        assert stats["torn_bytes_truncated"] > 0
        assert stats["lost_records"] == 0  # tail was past the commit
        assert os.path.getsize(path) < before
        for index in range(5):
            got = store.get(f"img-{index}")
            assert got is not None and got.verify()
        store.close()

    def test_garbage_tail_is_truncated(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        path = self._segment_paths(store)[-1]
        store.close()
        with open(path, "ab") as handle:
            handle.write(os.urandom(37))
        store = _store(tmp_path)
        assert store.stats()["torn_bytes_truncated"] >= 37
        assert store.get("img-a") == _record("a")
        store.close()

    def test_rot_inside_committed_prefix_counts_lost(self, tmp_path):
        store = _store(tmp_path)
        for index in range(4):
            store.put(f"img-{index}", _record(str(index)), False)
        path = self._segment_paths(store)[-1]
        store.close()
        # Flip one byte in the FIRST record's body: the scan loses it
        # and everything after it in that segment.
        with open(path, "r+b") as handle:
            handle.seek(SEGMENT_HEADER.size + RECORD_FRAME.size + 3)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        store = _store(tmp_path)
        stats = store.stats()
        assert stats["lost_records"] >= 1
        # The damaged record and everything after it *in that segment*
        # are gone; records in other segments survive untouched.
        assert len(store) < 4
        for image_id in store.ids():
            got = store.get(image_id)
            assert got is not None and got.verify()
        store.close()

    def test_headerless_last_segment_gets_header_rewritten(
        self, tmp_path
    ):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        store.close()
        # A crash can leave a fresh segment with a half-written header.
        extra = tmp_path / "shard" / f"seg-000002{SEGMENT_SUFFIX}"
        extra.write_bytes(b"RP")
        store = _store(tmp_path)
        # The adopted active segment must carry a valid header, or the
        # next recovery would reject everything appended into it.
        magic, version, seq = SEGMENT_HEADER.unpack(
            extra.read_bytes()[: SEGMENT_HEADER.size]
        )
        assert (magic, version, seq) == (SEGMENT_MAGIC,
                                         SEGMENT_VERSION, 2)
        assert store.get("img-a") == _record("a")
        store.close()

    def test_commits_into_repaired_segment_survive_second_reopen(
        self, tmp_path
    ):
        # Regression: a header-less last segment used to be adopted as
        # the active segment with appends at offset 0 and no header —
        # fsync'd, committed records that the *next* recovery then
        # truncated wholesale.
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        store.close()
        extra = tmp_path / "shard" / f"seg-000002{SEGMENT_SUFFIX}"
        extra.write_bytes(b"")  # crash before the header hit disk
        store = _store(tmp_path)
        store.put("img-b", _record("b"), False)
        store.close()
        reopened = _store(tmp_path)
        assert reopened.get("img-a") == _record("a")
        assert reopened.get("img-b") == _record("b")
        assert reopened.stats()["lost_records"] == 0
        reopened.close()

    def test_missing_commit_file_still_recovers(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        store.close()
        os.remove(tmp_path / "shard" / COMMIT_FILE)
        store = _store(tmp_path)
        assert store.get("img-a") == _record("a")
        store.close()


class TestSegmentsAndCompaction:
    def test_appends_roll_into_multiple_segments(self, tmp_path):
        store = _store(tmp_path, segment_bytes=4096)
        for index in range(12):
            store.put(f"img-{index}", _record(str(index), size=200), False)
        assert store.stats()["segments"] > 1
        store.close()
        reopened = _store(tmp_path)
        assert len(reopened) == 12
        reopened.close()

    def test_compaction_reclaims_dead_bytes(self, tmp_path):
        store = _store(
            tmp_path,
            compact_dead_bytes=1 << 30,  # never auto-compact
        )
        record = _record("a")
        store.put("img-a", record, False)
        for _ in range(20):
            store.put("img-a", record, True)
        dead_before = store.stats()["dead_bytes"]
        assert dead_before > 0
        reclaimed = store.compact()
        assert reclaimed == dead_before
        stats = store.stats()
        assert stats["dead_bytes"] == 0
        assert stats["segments"] == 1
        assert store.get("img-a") == record
        store.close()
        reopened = _store(tmp_path)
        assert reopened.get("img-a") == record
        reopened.close()

    def test_auto_compaction_triggers_on_threshold(self, tmp_path):
        store = _store(
            tmp_path,
            compact_dead_bytes=2048,
            compact_dead_fraction=0.5,
        )
        record = _record("a")
        store.put("img-a", record, False)
        for _ in range(30):
            store.put("img-a", record, True)
        stats = store.stats()
        assert stats["compactions"] >= 1
        assert stats["dead_bytes"] < 2048 + 2 * (
            RECORD_FRAME.size + len(record.pack()) + 16
        )
        store.close()

    def test_segment_header_layout(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        path = store.segment_files()[0]
        store.close()
        with open(path, "rb") as handle:
            magic, version, seq = SEGMENT_HEADER.unpack(
                handle.read(SEGMENT_HEADER.size)
            )
        assert magic == SEGMENT_MAGIC
        assert version == SEGMENT_VERSION
        assert seq == 1

    def test_iter_segment_records_reads_the_log(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        store.put("img-b", _record("b"), False)
        path = store.segment_files()[0]
        store.close()
        entries = list(iter_segment_records(path))
        assert [image_id for image_id, _ in entries] == ["img-a", "img-b"]
        assert all(record.verify() for _, record in entries)

    def test_iter_segment_rejects_foreign_file(self, tmp_path):
        path = tmp_path / f"bogus{SEGMENT_SUFFIX}"
        path.write_bytes(b"not a segment" * 4)
        with pytest.raises(ReproError):
            list(iter_segment_records(str(path)))


class TestRotOnRead:
    def test_frame_level_rot_turns_into_not_found(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        path = store.segment_files()[0]
        # Smash the record's frame CRC region in place.
        with open(path, "r+b") as handle:
            handle.seek(SEGMENT_HEADER.size + 4)
            handle.write(struct.pack("<I", 0))
        assert store.get("img-a") is None
        stats = store.stats()
        assert stats["read_errors"] == 1
        assert "img-a" not in store.ids()
        store.close()

    def test_corrupt_keeps_writer_crc_and_survives_reopen(self, tmp_path):
        store = _store(tmp_path)
        record = _record("a")
        store.put("img-a", record, False)
        assert store.corrupt("img-a", 6, "chaos")
        rotten = store.get("img-a")
        assert rotten is not None
        assert not rotten.verify()  # body changed, writer CRC kept
        assert rotten.crc_encoded == record.crc_encoded
        store.close()
        reopened = _store(tmp_path)
        rotten = reopened.get("img-a")
        assert rotten is not None and not rotten.verify()
        reopened.close()

    def test_corrupt_unknown_id_returns_false(self, tmp_path):
        store = _store(tmp_path)
        assert not store.corrupt("nope", 6, "chaos")
        store.close()

    def test_transient_read_error_does_not_evict(
        self, tmp_path, monkeypatch
    ):
        store = _store(tmp_path)
        record = _record("a")
        store.put("img-a", record, False)
        real = DiskShardStorage._read_entry
        calls = {"n": 0}

        def flaky(self, image_id, entry):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError(24, "too many open files")
            return real(self, image_id, entry)

        monkeypatch.setattr(DiskShardStorage, "_read_entry", flaky)
        assert store.get("img-a") is None
        assert store.stats()["read_errors"] == 1
        # The index entry survives a transient failure: the next read
        # serves the healthy bytes instead of NOT_FOUND.
        assert "img-a" in store.ids()
        assert store.get("img-a") == record
        store.close()

    def test_transient_read_error_aborts_compaction(
        self, tmp_path, monkeypatch
    ):
        store = _store(tmp_path, compact_dead_bytes=1 << 30)
        record = _record("a")
        store.put("img-a", record, False)
        store.put("img-a", record, True)
        monkeypatch.setattr(
            DiskShardStorage,
            "_read_entry",
            lambda self, image_id, entry: (_ for _ in ()).throw(
                OSError(5, "momentary EIO")
            ),
        )
        assert store.compact() == 0
        monkeypatch.undo()
        assert store.get("img-a") == record
        assert store.compact() > 0
        assert store.get("img-a") == record
        store.close()


class TestValidation:
    def test_tiny_segment_bytes_rejected(self, tmp_path):
        with pytest.raises(ReproError):
            DiskShardStorage(str(tmp_path / "s"), segment_bytes=16)

    def test_commit_crc_guard(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        store.close()
        commit = tmp_path / "shard" / COMMIT_FILE
        blob = bytearray(commit.read_bytes())
        blob[-1] ^= 0xFF
        commit.write_bytes(bytes(blob))
        # Damaged commit point degrades to "no commit point": recovery
        # still replays the log, it just can't classify tail damage.
        store = _store(tmp_path)
        assert store.get("img-a") == _record("a")
        store.close()

    def test_second_opener_of_live_dir_is_rejected(self, tmp_path):
        store = _store(tmp_path)
        store.put("img-a", _record("a"), False)
        with pytest.raises(ReproError, match="owned"):
            _store(tmp_path)
        store.close()
        # close() releases the advisory lock: reopen succeeds.
        reopened = _store(tmp_path)
        assert reopened.get("img-a") == _record("a")
        reopened.close()

    def test_in_memory_stats_and_close_are_protocol_complete(self):
        mem = InMemoryShardStorage()
        mem.put("img-a", _record("a"), False)
        assert mem.stats()["live_records"] == 1
        mem.close()  # must be a no-op, not an AttributeError
