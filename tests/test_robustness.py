"""Tier-2 robustness suite: fault injection, salvage, resilient fetch.

Run alone with ``pytest -m robustness`` (or ``make faults``). The core
acceptance property: for every fault profile and every scheme, the
resilient client either fully reconstructs the protected content or
returns a partial result with an *honest* damage mask — a block claimed
clean is bit-exact — and never lets a data fault escape as an uncaught
exception.
"""

import random

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import perturb_regions
from repro.core.psp import Psp
from repro.core.roi import RegionOfInterest
from repro.jpeg.codec import SalvageResult, decode_image, encode_image
from repro.jpeg.coefficients import CoefficientImage
from repro.robustness import (
    FAULT_KINDS,
    PROFILES,
    Backoff,
    FaultInjector,
    FaultProfile,
    FaultyPsp,
    ResilientClient,
    is_retriable,
    profile_from_name,
)
from repro.util.errors import (
    DeadlineExceededError,
    IntegrityError,
    RecoveryError,
    ReproError,
    ServiceOverloadedError,
    TransientError,
)
from repro.util.rect import Rect

pytestmark = pytest.mark.robustness

SCHEMES = ("puppies-b", "puppies-c", "puppies-z")
ROI_RECT = Rect(8, 8, 24, 24)


@pytest.fixture(scope="module", params=SCHEMES)
def protected(request):
    """(scheme, original, perturbed, public, keys) for one scheme."""
    scheme = request.param
    gen = np.random.default_rng(97)
    photo = gen.integers(0, 256, (48, 64, 3), dtype=np.uint8)
    original = CoefficientImage.from_array(photo, quality=75)
    roi = RegionOfInterest("r0", ROI_RECT, scheme=scheme)
    key = generate_private_key(roi.matrix_id, "robust-owner")
    keys = {roi.matrix_id: key}
    perturbed, public = perturb_regions(original, [roi], keys)
    return scheme, original, perturbed, public, keys


def _faulty_client(protected, profile, seed="matrix"):
    _scheme, _original, perturbed, public, keys = protected
    psp = Psp()
    psp.upload("img", perturbed, public, optimize=True)
    faulty = FaultyPsp(psp, FaultInjector(profile, seed=seed))
    sleeps = []
    client = ResilientClient(faulty, keys, sleep=sleeps.append)
    return client, psp, sleeps


class TestFaultInjector:
    def test_deterministic_per_context(self):
        injector = FaultInjector(PROFILES["bitflip"], seed="s")
        data = bytes(range(256)) * 8
        assert injector.corrupt(data, "a") == injector.corrupt(data, "a")
        assert injector.corrupt(data, "a") != injector.corrupt(data, "b")

    def test_input_never_mutated(self):
        data = bytes(range(256)) * 4
        for kind in FAULT_KINDS:
            if kind == "transient":
                continue
            injector = FaultInjector(FaultProfile(kind, severity=0.8))
            copy = bytes(data)
            injector.corrupt(data, "ctx")
            assert data == copy

    @pytest.mark.parametrize(
        "kind", [k for k in FAULT_KINDS if k != "transient"]
    )
    def test_every_kind_changes_the_blob(self, kind):
        data = bytes(range(256)) * 4
        injector = FaultInjector(FaultProfile(kind, severity=0.5))
        assert injector.corrupt(data, "x") != data

    def test_zero_severity_is_identity(self):
        data = b"pristine bytes"
        injector = FaultInjector(PROFILES["none"])
        assert injector.corrupt(data, "x") == data

    def test_profile_validation(self):
        with pytest.raises(ReproError):
            FaultProfile("meteor_strike")
        with pytest.raises(ReproError):
            FaultProfile("bitflip", severity=1.5)
        with pytest.raises(ReproError):
            FaultProfile("bitflip", target="cloud")
        with pytest.raises(ReproError):
            profile_from_name("not-a-profile")

    def test_scaled_returns_new_profile(self):
        base = PROFILES["bitflip"]
        hot = base.scaled(1.0)
        assert hot.severity == 1.0
        assert base.severity == 0.3


class TestFaultyPsp:
    def test_inner_store_never_mutated(self, protected):
        client, psp, _sleeps = _faulty_client(protected, PROFILES["bitflip"])
        clean = psp.stored("img")
        before = (bytes(clean.encoded), bytes(clean.public_bytes))
        client.fetch("img")
        client.fetch("img")
        after = psp.stored("img")
        assert (after.encoded, after.public_bytes) == before

    def test_same_fault_on_every_retry(self, protected):
        _scheme, _o, perturbed, public, _k = protected
        psp = Psp()
        psp.upload("img", perturbed, public)
        faulty = FaultyPsp(psp, FaultInjector(PROFILES["bitflip"], seed="r"))
        first = faulty.stored("img").encoded
        second = faulty.stored("img").encoded
        assert first == second
        assert faulty.attempts("img") == 2

    def test_transient_fails_then_serves_clean(self, protected):
        _scheme, _o, perturbed, public, _k = protected
        psp = Psp()
        psp.upload("img", perturbed, public)
        faulty = FaultyPsp(psp, FaultInjector(PROFILES["transient"]))
        with pytest.raises(TransientError):
            faulty.stored("img")
        with pytest.raises(TransientError):
            faulty.stored("img")
        served = faulty.stored("img")
        assert served.encoded == psp.stored("img").encoded


class TestBackoff:
    def test_capped_exponential_schedule(self):
        backoff = Backoff(
            base=0.05, factor=2.0, cap=0.3, max_retries=6, jitter=False
        )
        delays = [backoff.delay(n) for n in range(1, 7)]
        assert delays == [0.05, 0.1, 0.2, 0.3, 0.3, 0.3]

    def test_full_jitter_stays_within_ceiling(self):
        rng = random.Random(42)
        backoff = Backoff(base=0.05, factor=2.0, cap=0.3, rng=rng)
        for attempt in range(1, 8):
            ceiling = backoff.ceiling(attempt)
            for _ in range(50):
                assert 0.0 <= backoff.delay(attempt) <= ceiling

    def test_injected_rng_makes_jitter_deterministic(self):
        draws_a = [
            Backoff(rng=random.Random(7)).delay(n) for n in range(1, 5)
        ]
        draws_b = [
            Backoff(rng=random.Random(7)).delay(n) for n in range(1, 5)
        ]
        assert draws_a == draws_b

    def test_jitter_actually_spreads_concurrent_retries(self):
        # The thundering-herd property: two clients retrying the same
        # attempt draw different delays.
        draws = {
            round(Backoff(rng=random.Random(seed)).delay(3), 9)
            for seed in range(16)
        }
        assert len(draws) > 1

    def test_retry_after_floor_is_respected(self):
        backoff = Backoff(
            base=0.05, factor=2.0, cap=0.3, rng=random.Random(3)
        )
        for attempt in (1, 2, 3):
            delay = backoff.delay(attempt, floor=0.25)
            assert delay >= 0.25
        assert Backoff(jitter=False).delay(1, floor=0.5) == 0.5

    def test_error_classification(self):
        assert is_retriable(TransientError("psp flaked"))
        assert is_retriable(ServiceOverloadedError("queue full"))
        assert is_retriable(DeadlineExceededError("too slow"))
        assert is_retriable(TimeoutError("socket timeout"))
        # Damaged bytes retry into the same damage: go to read-repair.
        assert not is_retriable(IntegrityError("CRC mismatch"))
        assert not is_retriable(ReproError("unknown image id"))
        assert not is_retriable(ValueError("not even ours"))

    def test_transient_outage_recovers_without_real_sleep(self, protected):
        client, _psp, sleeps = _faulty_client(
            protected, PROFILES["transient"]
        )
        report = client.fetch("img")
        assert report.fully_recovered
        assert report.attempts == 3
        # Injected clock: no real sleeping. Full jitter draws uniformly
        # from [0, ceiling] per retry.
        assert len(sleeps) == 2
        assert 0.0 <= sleeps[0] <= 0.05
        assert 0.0 <= sleeps[1] <= 0.1

    def test_overload_retry_honors_retry_after_hint(self, protected):
        _scheme, _o, perturbed, public, keys = protected

        class OverloadedOncePsp:
            def __init__(self, inner):
                self.inner = inner
                self.calls = 0

            def stored(self, image_id):
                self.calls += 1
                if self.calls == 1:
                    raise ServiceOverloadedError(
                        "queue full", retry_after=0.2
                    )
                return self.inner.stored(image_id)

        psp = Psp()
        psp.upload("img", perturbed, public)
        sleeps = []
        client = ResilientClient(
            OverloadedOncePsp(psp), keys, sleep=sleeps.append
        )
        report = client.fetch("img")
        assert report.fully_recovered
        assert sleeps and sleeps[0] >= 0.2  # hint floors the jitter

    def test_retry_budget_exhaustion_raises(self, protected):
        profile = FaultProfile("transient", transient_failures=99)
        client, _psp, sleeps = _faulty_client(protected, profile)
        with pytest.raises(RecoveryError):
            client.fetch("img")
        assert len(sleeps) == client.backoff.max_retries


class TestSalvageDecoder:
    @pytest.fixture(scope="class")
    def encoded(self):
        gen = np.random.default_rng(11)
        photo = gen.integers(0, 256, (32, 40, 3), dtype=np.uint8)
        image = CoefficientImage.from_array(photo, quality=75)
        return image, encode_image(image, optimize=True)

    def test_strict_rejects_bitflip(self, encoded):
        _image, blob = encoded
        flipped = bytearray(blob)
        flipped[len(blob) // 2] ^= 0x10
        with pytest.raises(IntegrityError):
            decode_image(bytes(flipped))

    def test_clean_salvage_reports_no_damage(self, encoded):
        image, blob = encoded
        result = decode_image(blob, salvage=True)
        assert isinstance(result, SalvageResult)
        assert result.is_clean
        assert result.recovery_ratio == 1.0
        assert result.image.coefficients_equal(image)

    def test_truncation_keeps_only_verified_channels(self, encoded):
        image, blob = encoded
        result = decode_image(blob[: int(len(blob) * 0.7)], salvage=True)
        assert isinstance(result, SalvageResult)
        assert result.block_damage.any()
        assert result.recovery_ratio < 1.0
        # A truncated stream is indistinguishable from one with interior
        # bytes dropped, so only channels whose CRC verified may claim
        # clean blocks — and those must be bit-exact.
        for channel in range(image.n_channels):
            if not result.channel_crc_ok[channel]:
                assert result.block_damage[channel].all()
                continue
            clean = ~result.block_damage[channel]
            got = result.image.channels[channel][clean]
            want = image.channels[channel][clean]
            assert np.array_equal(got, want)
        # The first channel's stream survived the cut intact.
        assert result.channel_crc_ok[0]
        assert not result.block_damage[0].any()

    def test_interior_corruption_damns_whole_channel(self, encoded):
        image, blob = encoded
        # Flip bits mid-blob until strict decode fails, then check that
        # no interior-corrupted channel claims clean blocks.
        mutated = bytearray(blob)
        for offset in range(len(blob) // 2, len(blob) // 2 + 8):
            mutated[offset] ^= 0xFF
        result = decode_image(bytes(mutated), salvage=True)
        assert isinstance(result, SalvageResult)
        for channel, crc_ok in enumerate(result.channel_crc_ok):
            if not crc_ok:
                assert result.block_damage[channel].all()

    def test_default_table_fallback(self, encoded):
        image, blob = encoded
        result = decode_image(
            blob, salvage=True, force_default_tables=True
        )
        assert result.used_default_tables
        # Substituted tables mean nothing is guaranteed bit-exact.
        assert result.block_damage.all()


class TestFaultMatrix:
    """≥5 fault kinds × 3 schemes: never an uncaught exception, always
    an honest mask, bit-exact when nothing was injected."""

    PROFILE_NAMES = (
        "none",
        "bitflip",
        "truncate",
        "segment-drop",
        "duplicate",
        "strip-public",
        "public-bitflip",
        "transient",
    )

    @pytest.mark.parametrize("name", PROFILE_NAMES)
    def test_cell(self, protected, name):
        scheme, original, perturbed, _public, _keys = protected
        client, _psp, _sleeps = _faulty_client(
            protected, PROFILES[name], seed="matrix"
        )
        report = client.fetch("img")

        assert 0.0 <= report.recovery_ratio <= 1.0
        if name in ("none", "transient"):
            assert report.fully_recovered, report.notes
            assert report.image.coefficients_equal(original)
            return
        if not report.fully_recovered:
            with pytest.raises(RecoveryError) as excinfo:
                client.fetch_strict("img")
            assert excinfo.value.damage is report.block_damage or \
                np.array_equal(excinfo.value.damage, report.block_damage)
        if report.image is None:
            assert report.recovery_ratio == 0.0
            return
        if report.block_damage is None:
            pytest.fail("image returned without a damage mask")
        # Honesty check: a block claimed clean is bit-exact against the
        # truth — original where decryption ran, perturbed where the
        # public params were lost.
        truth = original if report.public is not None else perturbed
        by, bx = truth.blocks_shape
        if report.image.blocks_shape != (by, bx):
            return  # geometry lost; nothing is claimed clean block-wise
        for channel in range(truth.n_channels):
            clean = ~report.block_damage[channel]
            got = report.image.channels[channel][clean]
            want = truth.channels[channel][clean]
            assert np.array_equal(got, want), (
                f"{scheme}/{name}: channel {channel} claims "
                f"{int(clean.sum())} clean blocks that are not bit-exact"
            )

    def test_zero_fault_wrapping_costs_nothing(self, protected):
        _scheme, original, perturbed, public, keys = protected
        psp = Psp()
        psp.upload("img", perturbed, public, optimize=True)
        client = ResilientClient(psp, keys, sleep=lambda _t: None)
        report = client.fetch("img")
        assert report.fully_recovered
        assert report.bit_exact
        assert report.attempts == 1
        assert report.image.coefficients_equal(original)
        # fetch_strict is the drop-in strict path.
        strict = client.fetch_strict("img")
        assert strict.coefficients_equal(original)
