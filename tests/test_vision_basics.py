"""Integral image, gradients, Canny and metric tests."""

import numpy as np
import pytest

from repro.util.rect import Rect
from repro.vision.edges import canny
from repro.vision.gradients import (
    gaussian_blur,
    gradient_magnitude_orientation,
    sobel_gradients,
    to_grayscale,
)
from repro.vision.integral import box_sum, box_sums, integral_image
from repro.vision.metrics import (
    box_iou,
    detection_precision_recall,
    edge_overlap_ratio,
    mse,
    psnr,
    ssim,
)


class TestIntegralImage:
    def test_box_sum_matches_direct(self, rng):
        plane = rng.uniform(0, 10, (20, 30))
        ii = integral_image(plane)
        assert box_sum(ii, 3, 4, 6, 7) == pytest.approx(
            plane[3:9, 4:11].sum()
        )

    def test_full_image_sum(self, rng):
        plane = rng.uniform(0, 1, (11, 13))
        ii = integral_image(plane)
        assert box_sum(ii, 0, 0, 11, 13) == pytest.approx(plane.sum())

    def test_vectorized_matches_scalar(self, rng):
        plane = rng.uniform(0, 5, (16, 16))
        ii = integral_image(plane)
        ys = np.array([0, 3, 5])
        xs = np.array([1, 2, 8])
        vec = box_sums(ii, ys, xs, 4, 4)
        for i in range(3):
            assert vec[i] == pytest.approx(
                box_sum(ii, int(ys[i]), int(xs[i]), 4, 4)
            )


class TestGradients:
    def test_grayscale_conversion_weights(self):
        img = np.zeros((2, 2, 3))
        img[..., 1] = 100.0
        assert to_grayscale(img)[0, 0] == pytest.approx(58.7)

    def test_sobel_detects_vertical_edge(self):
        plane = np.zeros((10, 10))
        plane[:, 5:] = 100.0
        gy, gx = sobel_gradients(plane)
        assert np.abs(gx).max() > np.abs(gy).max()

    def test_orientation_of_horizontal_edge(self):
        plane = np.zeros((10, 10))
        plane[5:, :] = 100.0
        mag, ori = gradient_magnitude_orientation(plane)
        strongest = np.unravel_index(np.argmax(mag), mag.shape)
        # Gradient points down (+y): orientation near +-pi/2.
        assert abs(abs(ori[strongest]) - np.pi / 2) < 0.2

    def test_gaussian_blur_preserves_mean(self, rng):
        plane = rng.uniform(0, 255, (20, 20))
        blurred = gaussian_blur(plane, 2.0)
        assert blurred.mean() == pytest.approx(plane.mean(), rel=0.05)


class TestCanny:
    def test_detects_square_outline(self):
        img = np.zeros((40, 40))
        img[10:30, 10:30] = 200.0
        edges = canny(img)
        assert edges[10, 15] or edges[9, 15] or edges[11, 15]
        assert not edges[20, 20]  # interior is flat

    def test_flat_image_no_edges(self):
        assert not canny(np.full((20, 20), 77.0)).any()

    def test_edges_are_thin(self):
        img = np.zeros((40, 40))
        img[:, 20:] = 200.0
        edges = canny(img)
        # Non-maximum suppression: at most ~2 pixels thick per row.
        assert edges.sum(axis=1).max() <= 3

    def test_rgb_input_accepted(self, rng):
        img = rng.integers(0, 256, (30, 30, 3), dtype=np.uint8)
        assert canny(img).shape == (30, 30)


class TestMetrics:
    def test_psnr_identical_is_inf(self, rng):
        arr = rng.uniform(0, 255, (10, 10))
        assert psnr(arr, arr) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 16.0)  # mse = 256 -> psnr = 10*log10(255^2/256)
        assert psnr(a, b) == pytest.approx(24.05, abs=0.05)

    def test_mse_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_ssim_bounds(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        assert ssim(a, a) == pytest.approx(1.0)
        noise = rng.uniform(0, 255, (32, 32))
        assert ssim(a, noise) < 0.5

    def test_ssim_color_averages_channels(self, rng):
        a = rng.uniform(0, 255, (16, 16, 3))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_box_iou_cases(self):
        a = Rect(0, 0, 4, 4)
        assert box_iou(a, a) == 1.0
        assert box_iou(a, Rect(10, 10, 4, 4)) == 0.0
        assert box_iou(a, Rect(0, 2, 4, 4)) == pytest.approx(2 / 6)

    def test_precision_recall_greedy_matching(self):
        gt = [Rect(0, 0, 10, 10), Rect(20, 20, 10, 10)]
        dets = [Rect(1, 1, 10, 10), Rect(40, 40, 5, 5)]
        precision, recall, tp = detection_precision_recall(dets, gt)
        assert tp == 1
        assert precision == 0.5
        assert recall == 0.5

    def test_each_gt_matched_once(self):
        gt = [Rect(0, 0, 10, 10)]
        dets = [Rect(0, 0, 10, 10), Rect(1, 1, 10, 10)]
        _, _, tp = detection_precision_recall(dets, gt)
        assert tp == 1

    def test_edge_overlap_ratio(self):
        a = np.zeros((4, 4), dtype=bool)
        b = np.zeros((4, 4), dtype=bool)
        a[0, :2] = True
        b[0, :1] = True
        assert edge_overlap_ratio(a, b) == 0.5
        assert edge_overlap_ratio(np.zeros((4, 4), bool), b) == 0.0
