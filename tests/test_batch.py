"""Tests for the multi-image batch pipelines (``repro.batch``)."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.batch import (
    BatchOptions,
    protect_many,
    reconstruct_many,
)
from repro.cli import main as cli_main
from repro.jpeg.coefficients import CoefficientImage
from repro.util.errors import ReproError
from repro.util.imageio import read_image, write_image


@pytest.fixture()
def image_dir(tmp_path):
    """Three small distinct PPM images on disk."""
    gen = np.random.default_rng(11)
    paths = []
    root = tmp_path / "in"
    root.mkdir()
    for index, (h, w) in enumerate([(40, 48), (48, 40), (32, 64)]):
        array = gen.integers(0, 256, (h, w, 3), dtype=np.uint8)
        path = root / f"img{index}.ppm"
        write_image(str(path), array)
        paths.append(str(path))
    return root, paths


OPTIONS = BatchOptions(rois=((4, 4, 16, 16),), owner="batch-test")


class TestProtectMany:
    def test_inline_protect_writes_share_layout(self, image_dir, tmp_path):
        _, paths = image_dir
        out_root = str(tmp_path / "shared")
        report = protect_many(paths, out_root, options=OPTIONS, workers=1)
        assert report.n_ok == 3 and report.n_failed == 0
        assert report.workers == 1
        for item in report.items:
            assert item.ok and item.error is None
            assert item.n_regions >= 1 and item.n_keys >= 1
            for name in ("stored.rpj", "public.rppd"):
                assert os.path.exists(os.path.join(item.out_path, name))
            assert os.listdir(os.path.join(item.out_path, "keys"))
            assert item.stored_bytes == os.path.getsize(
                os.path.join(item.out_path, "stored.rpj")
            )

    def test_per_image_obs_survive_worker_processes(
        self, image_dir, tmp_path
    ):
        _, paths = image_dir
        report = protect_many(
            paths, str(tmp_path / "shared"), options=OPTIONS, workers=2
        )
        assert report.workers == 2
        for item in report.items:
            # Counters and spans recorded inside the worker process come
            # back attached to the item.
            assert item.counter_value("codec.encode.bytes") == \
                item.stored_bytes
            span_names = {span["name"] for span in item.spans}
            assert "codec.encode" in span_names
            assert "perturb.regions" in span_names or any(
                name.startswith("perturb") for name in span_names
            )

    def test_parent_registry_merges_tagged_counters(
        self, image_dir, tmp_path
    ):
        _, paths = image_dir
        obs.configure(enabled=True, fresh=True)
        try:
            report = protect_many(
                paths, str(tmp_path / "shared"), options=OPTIONS, workers=1
            )
            registry = obs.get_registry()
            assert registry.counter_value("batch.images") == 3
            names = [
                (c.name, c.tags.get("image")) for c in registry.counters()
            ]
            for item in report.items:
                assert ("codec.encode.bytes", item.stem) in names
            span_names = [s.name for s in registry.spans()]
            assert "batch.protect_many" in span_names
        finally:
            obs.configure(enabled=False, fresh=True)

    def test_whole_image_default_when_no_regions_given(
        self, image_dir, tmp_path
    ):
        _, paths = image_dir
        report = protect_many(
            paths[:1], str(tmp_path / "shared"),
            options=BatchOptions(owner="batch-test"), workers=1,
        )
        assert report.n_ok == 1
        assert report.items[0].n_regions >= 1

    def test_one_bad_input_does_not_sink_the_batch(
        self, image_dir, tmp_path
    ):
        _, paths = image_dir
        report = protect_many(
            paths + [str(tmp_path / "missing.ppm")],
            str(tmp_path / "shared"), options=OPTIONS, workers=1,
        )
        assert report.n_ok == 3 and report.n_failed == 1
        failed = [item for item in report.items if not item.ok]
        assert len(failed) == 1 and "missing" in failed[0].input_path
        assert failed[0].error


class TestWorkerBounds:
    """ISSUE-5 satellite: validate ``workers`` at the API boundary
    instead of letting ``ProcessPoolExecutor`` raise an opaque
    ``ValueError`` deep inside the pool machinery."""

    def test_zero_workers_rejected_with_clear_error(
        self, image_dir, tmp_path
    ):
        _, paths = image_dir
        with pytest.raises(ReproError, match="workers must be >= 1"):
            protect_many(
                paths, str(tmp_path / "shared"), options=OPTIONS, workers=0
            )

    def test_negative_workers_rejected_for_reconstruct_too(self, tmp_path):
        with pytest.raises(ReproError, match="workers must be >= 1"):
            reconstruct_many(
                [str(tmp_path / "share")], str(tmp_path / "out"),
                workers=-2,
            )

    def test_oversized_workers_clamped_to_job_count(
        self, image_dir, tmp_path
    ):
        _, paths = image_dir
        report = protect_many(
            paths, str(tmp_path / "shared"), options=OPTIONS, workers=64
        )
        assert report.workers == len(paths)
        assert report.n_failed == 0

    def test_chunksize_clamped_to_one(self, image_dir, tmp_path):
        _, paths = image_dir
        report = protect_many(
            paths[:1], str(tmp_path / "shared"), options=OPTIONS,
            workers=1, chunksize=0,
        )
        assert report.chunksize == 1
        assert report.n_ok == 1


class TestReconstructMany:
    def test_roundtrip_recovers_exact_coefficients(
        self, image_dir, tmp_path
    ):
        _, paths = image_dir
        shared = str(tmp_path / "shared")
        protect = protect_many(paths, shared, options=OPTIONS, workers=1)
        assert protect.n_failed == 0
        share_dirs = [item.out_path for item in protect.items]
        report = reconstruct_many(
            share_dirs, str(tmp_path / "out"), workers=1
        )
        assert report.n_failed == 0
        for source, item in zip(paths, report.items):
            # Full-key reconstruction inverts the perturbation exactly,
            # so the output equals the plain JPEG round trip of the
            # source image.
            expected = CoefficientImage.from_array(
                read_image(source), quality=OPTIONS.quality
            ).to_array()
            np.testing.assert_array_equal(
                read_image(item.out_path), expected
            )


class TestCliBatch:
    def test_cli_protect_then_reconstruct(
        self, image_dir, tmp_path, capsys
    ):
        root, _ = image_dir
        shared = str(tmp_path / "shared")
        code = cli_main([
            "batch", str(root), "--out-dir", shared,
            "--roi", "4,4,16,16", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "protect: 3/3 image(s) ok" in out
        code = cli_main([
            "batch", shared, "--op", "reconstruct",
            "--out-dir", str(tmp_path / "out"), "--workers", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "reconstruct: 3/3 image(s) ok" in out
        assert sorted(os.listdir(tmp_path / "out")) == [
            "img0.ppm", "img1.ppm", "img2.ppm"
        ]

    def test_cli_reports_failures_with_exit_code(self, tmp_path, capsys):
        code = cli_main([
            "batch", str(tmp_path / "nope.ppm"),
            "--out-dir", str(tmp_path / "shared"),
        ])
        assert code == 1
        assert "FAIL" in capsys.readouterr().out

    def test_cli_no_inputs_is_usage_error(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        code = cli_main([
            "batch", str(empty), "--out-dir", str(tmp_path / "shared"),
        ])
        assert code == 2
