"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset, load_image
from repro.jpeg.coefficients import CoefficientImage


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20160628)  # DSN'16 conference date


@pytest.fixture(scope="session")
def noise_rgb() -> np.ndarray:
    """A random RGB image (worst case for compression, rich coefficients)."""
    gen = np.random.default_rng(7)
    return gen.integers(0, 256, (64, 80, 3), dtype=np.uint8)


@pytest.fixture(scope="session")
def smooth_rgb() -> np.ndarray:
    """A smooth natural-ish gradient image (best case for compression)."""
    y, x = np.mgrid[0:72, 0:96]
    return np.stack(
        [
            np.sin(x / 17.0) * 60 + 120,
            y * 0.6 + 50,
            np.cos(y / 23.0) * 40 + 110,
        ],
        axis=-1,
    ).astype(np.uint8)


@pytest.fixture(scope="session")
def unaligned_rgb() -> np.ndarray:
    """An image whose dimensions are not multiples of 8 (padding paths)."""
    gen = np.random.default_rng(13)
    return gen.integers(0, 256, (50, 71, 3), dtype=np.uint8)


@pytest.fixture(scope="session")
def noise_image(noise_rgb) -> CoefficientImage:
    return CoefficientImage.from_array(noise_rgb, quality=75)


@pytest.fixture(scope="session")
def smooth_image(smooth_rgb) -> CoefficientImage:
    return CoefficientImage.from_array(smooth_rgb, quality=75)


@pytest.fixture(scope="session")
def pascal_image():
    """A deterministic PASCAL-style street scene with annotations."""
    return load_image("pascal", 0)


@pytest.fixture(scope="session")
def pascal_document():
    """A deterministic PASCAL-style document scan (index 3 is a document)."""
    return load_image("pascal", 3)


@pytest.fixture(scope="session")
def caltech_images():
    """A small slice of the Caltech-style portrait corpus."""
    return load_dataset("caltech", n_images=6)


@pytest.fixture(scope="session")
def feret_images():
    """A slice of the FERET-style mugshot corpus (labelled identities)."""
    return load_dataset("feret", n_images=45)
