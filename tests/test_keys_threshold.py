"""Shamir t-of-n threshold sharing: split/recover, integrity, wiring.

Covers the acceptance criteria of the threshold-keys PR: any t of n
shares recover a bit-identical key (including through RPKS framing and
the sender/receiver quorum path), any t-1 shares fail closed, and a
corrupted share is rejected *naming the bad share*.
"""

import dataclasses
import itertools

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.matrices import PrivateKey
from repro.core.perturb import SCHEMES
from repro.core.psp import Psp
from repro.core.receiver import Receiver
from repro.core.roi import RegionOfInterest
from repro.core.sender import Sender
from repro.core.serialization import (
    KEY_SHARE_MAGIC,
    deserialize_key_share,
    serialize_key_share,
)
from repro.keys.threshold import (
    SHARE_PRIME,
    KeyShare,
    ShareSet,
    recover_key,
    share_from_bytes,
    split_key,
)
from repro.util.errors import IntegrityError, KeyMismatchError
from repro.util.rect import Rect
from repro.util.rng import rng_from_key

pytestmark = pytest.mark.keys


def _tamper(share: KeyShare, **changes) -> KeyShare:
    """A field-tampered copy whose stale digest must betray it."""
    return dataclasses.replace(share, **changes)


class TestSplitRecover:
    @pytest.mark.parametrize("t,n", [(1, 1), (1, 3), (2, 2), (2, 3),
                                     (3, 5), (5, 5)])
    def test_any_quorum_recovers_bit_identical(self, t, n):
        key = generate_private_key("face-0", "alice")
        shares = split_key(key, n=n, t=t, rng=rng_from_key(f"split/{t}/{n}"))
        assert len(shares) == n
        for subset in itertools.combinations(shares, t):
            recovered = recover_key(subset)
            assert recovered == key
            assert recovered.matrix_id == key.matrix_id

    def test_recovery_order_independent(self):
        key = generate_private_key("m", "o")
        shares = split_key(key, n=4, t=3, rng=rng_from_key("order"))
        assert recover_key([shares[3], shares[0], shares[2]]) == key

    def test_extra_shares_beyond_quorum_ok(self):
        key = generate_private_key("m", "o")
        shares = split_key(key, n=5, t=2, rng=rng_from_key("extra"))
        assert recover_key(shares) == key

    def test_t_minus_one_fails_closed(self):
        key = generate_private_key("m", "o")
        shares = split_key(key, n=4, t=3, rng=rng_from_key("short"))
        with pytest.raises(KeyMismatchError, match="quorum not met"):
            recover_key(shares[:2])

    def test_zero_shares_fails(self):
        with pytest.raises(KeyMismatchError, match="zero shares"):
            recover_key([])

    def test_duplicate_identical_share_does_not_fake_quorum(self):
        key = generate_private_key("m", "o")
        shares = split_key(key, n=3, t=2, rng=rng_from_key("dup"))
        with pytest.raises(KeyMismatchError, match="quorum not met"):
            recover_key([shares[0], shares[0]])

    def test_shares_from_different_splits_cannot_mix(self):
        key = generate_private_key("m", "o")
        first = split_key(key, n=3, t=2, rng=rng_from_key("mix/a"))
        second = split_key(key, n=3, t=2, rng=rng_from_key("mix/b"))
        with pytest.raises(KeyMismatchError, match="different split"):
            recover_key([first[0], second[1]])

    def test_shares_from_different_regions_cannot_mix(self):
        a = split_key(generate_private_key("m1", "o"), n=3, t=2,
                      rng=rng_from_key("r/a"))
        b = split_key(generate_private_key("m2", "o"), n=3, t=2,
                      rng=rng_from_key("r/b"))
        with pytest.raises(KeyMismatchError, match="different region"):
            recover_key([a[0], b[1]])

    def test_invalid_parameters_rejected(self):
        key = generate_private_key("m", "o")
        with pytest.raises(KeyMismatchError, match="threshold"):
            split_key(key, n=3, t=0)
        with pytest.raises(KeyMismatchError, match="exceeds"):
            split_key(key, n=2, t=3)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_recovery_fuzz_across_schemes(self, scheme):
        """Any-t-of-n fuzz: random quorums over keys of every scheme."""
        fuzz = rng_from_key(f"fuzz/{scheme}")
        for trial in range(6):
            t = int(fuzz.integers(1, 5))
            n = int(fuzz.integers(t, t + 4))
            key = generate_private_key(
                f"{scheme}/region-{trial}", f"owner-{scheme}"
            )
            shares = split_key(key, n=n, t=t, rng=fuzz)
            picked = fuzz.choice(n, size=t, replace=False)
            assert recover_key(shares[i] for i in picked) == key


class TestShareIntegrity:
    def test_tampered_value_is_named(self):
        shares = split_key(generate_private_key("face-0", "o"), n=3, t=2,
                           rng=rng_from_key("tamper"))
        evil = _tamper(
            shares[1],
            values=(shares[1].values[0] ^ 1,) + shares[1].values[1:],
        )
        with pytest.raises(
            KeyMismatchError, match="share 2/3 of 'face-0'"
        ):
            evil.verify()
        with pytest.raises(
            KeyMismatchError, match="share 2/3 of 'face-0'"
        ):
            recover_key([shares[0], evil])

    def test_tampered_metadata_is_named(self):
        shares = split_key(generate_private_key("m", "o"), n=3, t=2,
                           rng=rng_from_key("meta"))
        with pytest.raises(KeyMismatchError, match="share 3/3 of 'm'"):
            _tamper(shares[2], threshold=1).verify()

    def test_forged_share_fails_the_secret_digest(self):
        """A share re-digested after tampering passes verify() but the
        recovered payload no longer matches the split's secret digest."""
        shares = split_key(generate_private_key("m", "o"), n=2, t=2,
                           rng=rng_from_key("forge"))
        forged = KeyShare(
            matrix_id=shares[1].matrix_id,
            split_id=shares[1].split_id,
            index=shares[1].index,
            threshold=shares[1].threshold,
            total=shares[1].total,
            payload_len=shares[1].payload_len,
            values=((shares[1].values[0] + 1) % SHARE_PRIME,)
            + shares[1].values[1:],
            secret_digest=shares[1].secret_digest,
        )
        forged.verify()  # self-consistent, so only recovery can catch it
        with pytest.raises(KeyMismatchError, match="secret digest"):
            recover_key([shares[0], forged])

    def test_out_of_field_value_rejected(self):
        shares = split_key(generate_private_key("m", "o"), n=2, t=2,
                           rng=rng_from_key("field"))
        evil = _tamper(shares[0], values=(SHARE_PRIME,)
                       + shares[0].values[1:])
        with pytest.raises(KeyMismatchError, match="share field"):
            evil.verify()


class TestRpksFraming:
    def test_roundtrip(self):
        shares = split_key(generate_private_key("face-0", "o"), n=3, t=2,
                           rng=rng_from_key("rpks"))
        for share in shares:
            blob = serialize_key_share(share)
            assert blob[:4] == KEY_SHARE_MAGIC
            assert deserialize_key_share(blob) == share
            assert share_from_bytes(blob, "face-0") == share

    def test_bad_magic_raises_integrity_error(self):
        with pytest.raises(IntegrityError, match="magic"):
            deserialize_key_share(b"NOPE" + b"\x00" * 32)

    def test_tampered_blob_raises_key_mismatch(self):
        share = split_key(generate_private_key("m", "o"), n=2, t=2,
                          rng=rng_from_key("blob"))[0]
        blob = bytearray(share.serialize())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(KeyMismatchError, match="damaged"):
            share_from_bytes(bytes(blob))

    def test_truncated_blob_raises_key_mismatch(self):
        share = split_key(generate_private_key("m", "o"), n=2, t=2,
                          rng=rng_from_key("trunc"))[0]
        blob = share.serialize()
        for cut in (3, 10, len(blob) - 1):
            with pytest.raises(KeyMismatchError, match="damaged"):
                share_from_bytes(blob[:cut])

    def test_wrong_id_raises_naming_the_share(self):
        share = split_key(generate_private_key("face-0", "o"), n=3, t=2,
                          rng=rng_from_key("wrongid"))[1]
        with pytest.raises(
            KeyMismatchError,
            match="share 2/3 of 'face-0' cannot unlock",
        ):
            share_from_bytes(share.serialize(), "plate-1")

    def test_reframed_tamper_is_still_named(self):
        """Valid CRC + corrupt share: the digest names the share."""
        share = split_key(generate_private_key("face-0", "o"), n=3, t=2,
                          rng=rng_from_key("reframe"))[0]
        evil = _tamper(share, payload_len=share.payload_len + 1)
        blob = serialize_key_share(evil)  # CRC covers the tampered body
        with pytest.raises(
            KeyMismatchError, match="share 1/3 of 'face-0'"
        ):
            share_from_bytes(blob)


class TestStatisticalIndependence:
    def test_t_minus_one_shares_look_uniform(self):
        """A below-quorum share carries no information about the secret:
        across many fresh splits of the *same* key, a fixed share's field
        elements are uniform (chi-square on the low 6 bits)."""
        key = generate_private_key("m", "o")
        rng = rng_from_key("independence")
        trials = 384
        counts = np.zeros(64, dtype=np.int64)
        for _ in range(trials):
            share = split_key(key, n=2, t=2, rng=rng)[0]
            counts[share.values[0] % 64] += 1
        expected = trials / 64
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 63 dof: mean 63, p=1e-4 cutoff ~117 — generous but damning for
        # any secret leakage (a constant residue would score ~24k).
        assert chi2 < 117, f"chi-square {chi2:.1f} suggests leakage"

    def test_share_distribution_independent_of_secret(self):
        """Two different secrets induce indistinguishable share values."""
        rng_a = rng_from_key("dist")
        rng_b = rng_from_key("dist")  # same randomness, different secrets
        key_a = generate_private_key("m", "owner-a")
        key_b = generate_private_key("m", "owner-b")
        trials = 256
        bits_a = np.array([
            split_key(key_a, 3, 2, rng=rng_a)[0].values[0] & 1
            for _ in range(trials)
        ])
        bits_b = np.array([
            split_key(key_b, 3, 2, rng=rng_b)[0].values[0] & 1
            for _ in range(trials)
        ])
        # Each stream is ~Bernoulli(1/2); their means differ by far less
        # than any secret-dependent bias would produce.
        assert abs(bits_a.mean() - 0.5) < 0.15
        assert abs(bits_b.mean() - 0.5) < 0.15

    def test_fresh_randomness_per_split(self):
        key = generate_private_key("m", "o")
        a = split_key(key, n=2, t=2)
        b = split_key(key, n=2, t=2)
        assert a[0].split_id != b[0].split_id
        assert a[0].values != b[0].values


class TestShareSet:
    def test_family_policy_two_of_three(self):
        key = generate_private_key("face-0", "alice")
        family = ShareSet.split(key, ["mom", "dad", "sister"], threshold=2,
                                rng=rng_from_key("family"))
        assert not family.can_recover(["mom"])
        assert family.can_recover(["mom", "sister"])
        assert family.recover(["dad", "sister"]) == key
        assert family.recover(["mom", "dad", "sister"]) == key

    def test_below_quorum_names_the_region(self):
        key = generate_private_key("face-0", "alice")
        family = ShareSet.split(key, ["mom", "dad", "sister"], threshold=2,
                                rng=rng_from_key("family2"))
        with pytest.raises(KeyMismatchError, match="face-0"):
            family.recover(["mom"])

    def test_unknown_holder_rejected(self):
        family = ShareSet.split(
            generate_private_key("m", "o"), ["a", "b"], threshold=2,
            rng=rng_from_key("holders"),
        )
        with pytest.raises(KeyMismatchError, match="'stranger'"):
            family.share_for("stranger")
        # Unknown names never count toward the quorum.
        assert not family.can_recover(["stranger", "a"])

    def test_duplicate_holder_names_rejected(self):
        with pytest.raises(KeyMismatchError, match="unique"):
            ShareSet.split(generate_private_key("m", "o"), ["a", "a"],
                           threshold=2)


class TestSenderReceiverQuorum:
    def test_receiver_recovers_on_quorum(self):
        sender = Sender("alice")
        shares = sender.split_region_key(
            "face-0", ["bob", "carol", "dave"], threshold=2
        )
        bob = Receiver("bob")
        assert bob.add_share(shares.share_for("carol")) is None
        assert "face-0" not in bob.keyring
        assert bob.pending_share_count("face-0") == 1
        key = bob.add_share(shares.share_for("dave"))
        assert key is not None
        assert bob.keyring["face-0"] == key
        # Recovered on quorum; the banked partial shares are dropped.
        assert bob.pending_share_count("face-0") == 0

    def test_escrow_discards_the_senders_copy(self):
        sender = Sender("alice")
        shares = sender.split_region_key(
            "face-0", ["e1", "e2", "e3"], threshold=2, discard=True
        )
        assert "face-0" not in sender.keyring
        # Only a quorum of escrow nodes can rebuild the key now — and it
        # is the same key the sender derived before discarding.
        assert (
            shares.recover(["e1", "e3"])
            == generate_private_key("face-0", "alice")
        )

    def test_corrupted_share_not_banked(self):
        sender = Sender("alice")
        shares = sender.split_region_key("m", ["x", "y"], threshold=2)
        evil = _tamper(shares.share_for("x"), index=2, total=2)
        bob = Receiver("bob")
        with pytest.raises(KeyMismatchError, match="share 2/2 of 'm'"):
            bob.add_share(evil)
        assert bob.pending_share_count("m") == 0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_end_to_end_reconstruction_from_shares(self, scheme):
        """Quorum-recovered keys reconstruct the ROI exactly as the
        original key does, for every perturbation scheme."""
        gen = np.random.default_rng(99)
        image = gen.integers(0, 256, (48, 48, 3), dtype=np.uint8)
        roi = RegionOfInterest(
            region_id="r0",
            rect=Rect(8, 8, 16, 16),
            scheme=scheme,
        )
        sender = Sender("alice")
        request = sender.protect_image(image, [roi])
        psp = Psp()
        sender.upload(psp, "img", request)

        matrix_ids = roi.matrix_ids()
        receiver = Receiver("bob")
        for matrix_id in matrix_ids:
            shares = sender.split_region_key(
                matrix_id, ["bob", "carol", "dave"], threshold=2
            )
            assert receiver.add_share(shares.share_for("bob")) is None
            assert receiver.add_share(shares.share_for("dave")) is not None

        full = Receiver("oracle")
        for matrix_id in matrix_ids:
            full.keyring.add(sender.keyring[matrix_id])
        assert np.array_equal(
            receiver.fetch_pixels(psp, "img"),
            full.fetch_pixels(psp, "img"),
        )
