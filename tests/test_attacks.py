"""Attack-suite tests: each attack must work on originals and fail on
PuPPIeS-perturbed images — the paper's Section VI claims."""

import numpy as np
import pytest

from repro.attacks import (
    analyze_brute_force,
    demo_exhaustive_search,
    edge_attack,
    matrix_inference_attack,
    pca_reconstruction_attack,
    simulated_observer_study,
    sift_attack,
    spiral_interpolation_attack,
)
from repro.attacks.bruteforce import NIST_REFERENCE_BITS
from repro.attacks.edge_attack import matched_pixel_cdf
from repro.attacks.observer import judge_recovery
from repro.core.keys import generate_private_key
from repro.core.matrices import PrivateKey
from repro.core.perturb import perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.datasets import load_image
from repro.jpeg.coefficients import CoefficientImage
from repro.util.rect import Rect
from repro.vision.metrics import psnr


@pytest.fixture(scope="module")
def protected_scene():
    """A street scene with its whole grid perturbed (worst case for us)."""
    source = load_image("pascal", 0)
    image = CoefficientImage.from_array(source.array, quality=75)
    by, bx = image.blocks_shape
    roi = RegionOfInterest(
        "whole",
        Rect(0, 0, by * 8, bx * 8),
        PrivacySettings.for_level(PrivacyLevel.MEDIUM),
    )
    key = generate_private_key(roi.matrix_id, "owner")
    perturbed, public = perturb_regions(image, [roi], {roi.matrix_id: key})
    return source, image, perturbed, public, key


class TestBruteForce:
    def test_levels_analysis(self):
        low = analyze_brute_force(PrivacySettings.for_level(PrivacyLevel.LOW))
        med = analyze_brute_force(
            PrivacySettings.for_level(PrivacyLevel.MEDIUM)
        )
        high = analyze_brute_force(
            PrivacySettings.for_level(PrivacyLevel.HIGH)
        )
        assert low.dc_bits == med.dc_bits == high.dc_bits == 704
        assert low.total_bits < med.total_bits < high.total_bits
        for analysis in (low, med, high):
            assert analysis.total_bits >= NIST_REFERENCE_BITS
            # Practically unsearchable: more than 10^100 years at 1 THz.
            assert analysis.years_at_terahash > 1e100

    def test_demo_search_finds_toy_key(self):
        # 6-bit keyspace: exhaustive search succeeds, demonstrating the
        # attack model is real — only the exponent defeats it.
        source = load_image("pascal", 1)
        image = CoefficientImage.from_array(source.array, quality=75)
        roi = RegionOfInterest(
            "r", Rect(8, 8, 24, 24), PrivacySettings.for_level(PrivacyLevel.MEDIUM)
        )
        true_seed = 37
        key = PrivateKey.from_seed_material(
            roi.matrix_id, f"demo-keyspace/{true_seed}"
        )
        perturbed, public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        found = demo_exhaustive_search(
            perturbed, public, key, keyspace_bits=6
        )
        assert found == true_seed


class TestSiftAttack:
    def test_original_matches_itself(self, protected_scene):
        source, *_ = protected_scene
        result = sift_attack(source.array, source.array)
        assert result.n_matched == result.n_original > 0

    def test_perturbed_matches_almost_nothing(self, protected_scene):
        source, _image, perturbed, _public, _key = protected_scene
        result = sift_attack(source.array, perturbed.to_array())
        assert result.n_matched <= 0.15 * max(result.n_original, 1)


class TestEdgeAttack:
    def test_original_edges_self_consistent(self, protected_scene):
        source, *_ = protected_scene
        result = edge_attack(source.array, source.array)
        assert result.survival_ratio == 1.0

    def test_perturbed_edges_mostly_destroyed(self, protected_scene):
        source, _image, perturbed, _public, _key = protected_scene
        result = edge_attack(source.array, perturbed.to_array())
        assert result.normalized_matched < 0.05  # the Fig. 21 bound

    def test_cdf_shape(self, protected_scene):
        source, _image, perturbed, _public, _key = protected_scene
        grid, cdf, results = matched_pixel_cdf(
            [(source.array, perturbed.to_array())]
        )
        assert len(grid) == len(cdf)
        assert cdf[-1] == 1.0
        assert (np.diff(cdf) >= 0).all()


class TestCorrelationAttacks:
    def test_matrix_inference_fails(self, protected_scene):
        _source, image, perturbed, public, _key = protected_scene
        recovered = matrix_inference_attack(perturbed, public)
        assert psnr(recovered.to_float_array(), image.to_float_array()) < 15

    def test_spiral_interpolation_fails_on_interior_content(self):
        source = load_image("pascal", 0)
        image = CoefficientImage.from_array(source.array, quality=75)
        roi_rect = Rect(24, 40, 32, 48)
        roi = RegionOfInterest(
            "r", roi_rect, PrivacySettings.for_level(PrivacyLevel.MEDIUM)
        )
        key = generate_private_key(roi.matrix_id, "o")
        perturbed, _public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        filled = spiral_interpolation_attack(
            perturbed.to_array().astype(float), roi_rect
        )
        rows, cols = roi_rect.slices()
        truth = image.to_float_array()[rows, cols]
        guess = filled[rows, cols]
        # Interpolation produces a smooth blur, not the car underneath.
        assert psnr(guess, truth) < 20

    def test_spiral_fills_every_pixel(self):
        pixels = np.zeros((40, 40))
        pixels[:10] = 100.0
        out = spiral_interpolation_attack(pixels, Rect(15, 15, 10, 10))
        assert np.isfinite(out).all()

    def test_pca_reconstruction_fails(self, protected_scene):
        source = load_image("pascal", 0)
        image = CoefficientImage.from_array(source.array, quality=75)
        roi_rect = Rect(24, 40, 32, 48)
        roi = RegionOfInterest(
            "r", roi_rect, PrivacySettings.for_level(PrivacyLevel.MEDIUM)
        )
        key = generate_private_key(roi.matrix_id, "o")
        perturbed, _public = perturb_regions(
            image, [roi], {roi.matrix_id: key}
        )
        recovered = pca_reconstruction_attack(
            perturbed.to_array().astype(float), roi_rect
        )
        rows, cols = roi_rect.slices()
        truth = image.to_float_array()[rows, cols].mean(axis=2)
        guess = recovered[rows, cols].mean(axis=2)
        assert psnr(guess, truth) < 20


class TestObserverStudy:
    def test_original_is_describable(self, protected_scene):
        source, *_ = protected_scene
        roi = Rect(10, 10, 40, 60)
        verdict = judge_recovery(source.array, source.array, roi)
        assert verdict.describable

    def test_random_noise_is_not_describable(self, protected_scene, rng):
        source, *_ = protected_scene
        noise = rng.integers(0, 256, source.array.shape).astype(np.uint8)
        verdict = judge_recovery(source.array, noise, Rect(10, 10, 40, 60))
        assert not verdict.describable

    def test_study_over_recovered_images(self, protected_scene):
        source, image, perturbed, public, _key = protected_scene
        roi = Rect(16, 16, 40, 56)
        cases = []
        arr = perturbed.to_array().astype(float)
        cases.append(
            (source.array, matrix_inference_attack(perturbed, public).to_array(), roi)
        )
        cases.append(
            (source.array, spiral_interpolation_attack(arr, roi), roi)
        )
        cases.append(
            (source.array, pca_reconstruction_attack(arr, roi), roi)
        )
        fraction, verdicts = simulated_observer_study(cases)
        assert fraction == 0.0  # the paper: none of 53 MTurkers succeeded
        assert len(verdicts) == 3
