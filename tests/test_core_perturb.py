"""Perturbation/reconstruction tests: Algorithms 1-2 and Lemma III.1."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import (
    SCHEMES,
    perturb_regions,
    perturbation_for_blocks,
    wrap_add,
    wrap_subtract,
)
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.reconstruct import (
    reconstruct_regions,
    reconstruct_single_region,
)
from repro.core.roi import RegionOfInterest
from repro.util.errors import KeyMismatchError, ReproError, RoiError
from repro.util.rect import Rect

MEDIUM = PrivacySettings.for_level(PrivacyLevel.MEDIUM)
HIGH = PrivacySettings.for_level(PrivacyLevel.HIGH)
LOW = PrivacySettings.for_level(PrivacyLevel.LOW)


def _roi(scheme, rect=Rect(16, 16, 24, 32), settings=MEDIUM, rid="r0"):
    return RegionOfInterest(rid, rect, settings, scheme=scheme)


def _protect(image, rois, owner="alice"):
    keys = {
        roi.matrix_id: generate_private_key(roi.matrix_id, owner)
        for roi in rois
    }
    perturbed, public = perturb_regions(image, rois, keys)
    return perturbed, public, keys


class TestWrapArithmetic:
    def test_lemma_iii1_roundtrip_full_grid(self):
        b = np.arange(-1024, 1024, dtype=np.int64)
        for p in (0, 1, 777, 1024, 2047):
            e, _w = wrap_add(b, np.full_like(b, p))
            assert (e >= -1024).all() and (e <= 1023).all()
            assert np.array_equal(wrap_subtract(e, np.full_like(b, p)), b)

    def test_wrap_mask_detects_wraps(self):
        e, w = wrap_add(np.array([1000]), np.array([2000]))
        assert w[0]
        e2, w2 = wrap_add(np.array([0]), np.array([5]))
        assert not w2[0]
        assert e2[0] == 5

    def test_zero_perturbation_is_identity(self):
        b = np.array([-1024, -1, 0, 1, 1023])
        e, w = wrap_add(b, np.zeros_like(b))
        assert np.array_equal(e, b)
        assert not w.any()


class TestPerturbationVectors:
    def test_schemes_enumerated(self):
        assert set(SCHEMES) == {
            "puppies-n",
            "puppies-b",
            "puppies-c",
            "puppies-z",
        }

    def test_naive_scheme_shares_dc_value(self):
        key = generate_private_key("m", "o")
        p, _ = perturbation_for_blocks(key, MEDIUM, "puppies-n", 130)
        assert len(np.unique(p[:, 0])) == 1  # the VI-B.1 weakness

    def test_base_scheme_cycles_dc_over_64_entries(self):
        key = generate_private_key("m", "o")
        p, _ = perturbation_for_blocks(key, MEDIUM, "puppies-b", 130)
        assert np.array_equal(p[64:128, 0], p[:64, 0])
        assert len(np.unique(p[:64, 0])) > 32

    def test_compression_scheme_respects_ranges(self):
        from repro.core.policy import range_matrix

        key = generate_private_key("m", "o")
        q = range_matrix(MEDIUM)
        p, _ = perturbation_for_blocks(key, MEDIUM, "puppies-c", 10)
        for i in range(1, 64):
            assert (p[:, i] < q[i]).all()
            assert (p[:, i] >= 0).all()

    def test_low_privacy_leaves_ac_unperturbed(self):
        key = generate_private_key("m", "o")
        p, _ = perturbation_for_blocks(key, LOW, "puppies-c", 10)
        assert (p[:, 1:] == 0).all()

    def test_zero_scheme_skips_original_zeros(self):
        key = generate_private_key("m", "o")
        zz = np.zeros((4, 64), dtype=np.int64)
        zz[:, 5] = 7
        p, skip = perturbation_for_blocks(
            key, HIGH, "puppies-z", 4, zigzag=zz
        )
        assert skip[:, 1:5].all() and skip[:, 6:].all()
        assert not skip[:, 5].any() and not skip[:, 0].any()
        assert (p[skip] == 0).all()

    def test_unknown_scheme_rejected(self):
        key = generate_private_key("m", "o")
        with pytest.raises(ReproError):
            perturbation_for_blocks(key, MEDIUM, "puppies-x", 4)


class TestPerturbReconstruct:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_exact_recovery_scenario1(self, noise_image, scheme):
        roi = _roi(scheme)
        perturbed, public, keys = _protect(noise_image, [roi])
        recovered = reconstruct_regions(perturbed, public, keys)
        assert recovered.coefficients_equal(noise_image)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_perturbation_changes_roi(self, noise_image, scheme):
        roi = _roi(scheme)
        perturbed, _public, _keys = _protect(noise_image, [roi])
        assert not perturbed.coefficients_equal(noise_image)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_outside_roi_untouched(self, noise_image, scheme):
        roi = _roi(scheme, rect=Rect(16, 16, 16, 16))
        perturbed, _public, _keys = _protect(noise_image, [roi])
        for chan_p, chan_o in zip(perturbed.channels, noise_image.channels):
            mask = np.ones(chan_p.shape[:2], dtype=bool)
            mask[2:4, 2:4] = False
            assert np.array_equal(chan_p[mask], chan_o[mask])

    @pytest.mark.parametrize(
        "level", [PrivacyLevel.LOW, PrivacyLevel.MEDIUM, PrivacyLevel.HIGH]
    )
    def test_all_privacy_levels_recover(self, noise_image, level):
        roi = _roi("puppies-c", settings=PrivacySettings.for_level(level))
        perturbed, public, keys = _protect(noise_image, [roi])
        assert reconstruct_regions(
            perturbed, public, keys
        ).coefficients_equal(noise_image)

    def test_smooth_image_z_scheme(self, smooth_image):
        # Smooth images have many zero AC coefficients — the -Z hot path.
        roi = _roi("puppies-z", rect=Rect(0, 0, 40, 48))
        perturbed, public, keys = _protect(smooth_image, [roi])
        assert reconstruct_regions(
            perturbed, public, keys
        ).coefficients_equal(smooth_image)

    def test_unaligned_image_whole_grid_roi(self, unaligned_rgb):
        from repro.jpeg.coefficients import CoefficientImage

        image = CoefficientImage.from_array(unaligned_rgb)
        by, bx = image.blocks_shape
        roi = _roi("puppies-c", rect=Rect(0, 0, by * 8, bx * 8))
        perturbed, public, keys = _protect(image, [roi])
        assert reconstruct_regions(
            perturbed, public, keys
        ).coefficients_equal(image)

    def test_multiple_regions_different_keys(self, noise_image):
        rois = [
            _roi("puppies-c", rect=Rect(0, 0, 16, 16), rid="a"),
            _roi("puppies-z", rect=Rect(32, 32, 16, 24), rid="b"),
        ]
        perturbed, public, keys = _protect(noise_image, rois)
        # Full key set: exact recovery.
        assert reconstruct_regions(
            perturbed, public, keys
        ).coefficients_equal(noise_image)

    def test_partial_keys_partial_recovery(self, noise_image):
        rois = [
            _roi("puppies-c", rect=Rect(0, 0, 16, 16), rid="a"),
            _roi("puppies-c", rect=Rect(32, 32, 16, 24), rid="b"),
        ]
        perturbed, public, keys = _protect(noise_image, rois)
        only_a = {rois[0].matrix_id: keys[rois[0].matrix_id]}
        partial = reconstruct_regions(perturbed, public, only_a)
        # Region a restored...
        assert np.array_equal(
            partial.channels[0][:2, :2], noise_image.channels[0][:2, :2]
        )
        # ...region b still perturbed.
        assert not np.array_equal(
            partial.channels[0][4:6, 4:6], noise_image.channels[0][4:6, 4:6]
        )

    def test_wrong_key_garbage_not_crash(self, noise_image):
        roi = _roi("puppies-c")
        perturbed, public, _keys = _protect(noise_image, [roi])
        wrong = {roi.matrix_id: generate_private_key(roi.matrix_id, "eve")}
        recovered = reconstruct_regions(perturbed, public, wrong)
        assert not recovered.coefficients_equal(noise_image)

    def test_reconstruct_single_region(self, noise_image):
        rois = [
            _roi("puppies-c", rect=Rect(0, 0, 16, 16), rid="a"),
            _roi("puppies-c", rect=Rect(32, 32, 16, 16), rid="b"),
        ]
        perturbed, public, keys = _protect(noise_image, rois)
        one = reconstruct_single_region(
            perturbed, public, "a", keys[rois[0].matrix_id]
        )
        assert np.array_equal(
            one.channels[0][:2, :2], noise_image.channels[0][:2, :2]
        )

    def test_reconstruct_single_region_key_mismatch(self, noise_image):
        rois = [
            _roi("puppies-c", rect=Rect(0, 0, 16, 16), rid="a"),
            _roi("puppies-c", rect=Rect(32, 32, 16, 16), rid="b"),
        ]
        perturbed, public, keys = _protect(noise_image, rois)
        with pytest.raises(KeyMismatchError):
            reconstruct_single_region(
                perturbed, public, "a", keys[rois[1].matrix_id]
            )

    def test_missing_key_at_perturb_rejected(self, noise_image):
        roi = _roi("puppies-c")
        with pytest.raises(KeyMismatchError):
            perturb_regions(noise_image, [roi], {})

    def test_overlapping_rois_rejected(self, noise_image):
        rois = [
            _roi("puppies-c", rect=Rect(0, 0, 24, 24), rid="a"),
            _roi("puppies-c", rect=Rect(16, 16, 24, 24), rid="b"),
        ]
        keys = {
            roi.matrix_id: generate_private_key(roi.matrix_id, "o")
            for roi in rois
        }
        with pytest.raises(RoiError):
            perturb_regions(noise_image, rois, keys)

    def test_unaligned_roi_rejected(self, noise_image):
        roi = _roi("puppies-c", rect=Rect(3, 3, 16, 16))
        keys = {roi.matrix_id: generate_private_key(roi.matrix_id, "o")}
        with pytest.raises(RoiError):
            perturb_regions(noise_image, [roi], keys)

    def test_out_of_bounds_roi_rejected(self, noise_image):
        roi = _roi("puppies-c", rect=Rect(0, 0, 8, 8 * 1000))
        keys = {roi.matrix_id: generate_private_key(roi.matrix_id, "o")}
        with pytest.raises(RoiError):
            perturb_regions(noise_image, [roi], keys)

    def test_public_params_recorded(self, noise_image):
        roi = _roi("puppies-z")
        perturbed, public, _keys = _protect(noise_image, [roi])
        region = public.region_by_id("r0")
        assert region.scheme == "puppies-z"
        assert region.settings == MEDIUM
        assert len(region.wind) == noise_image.n_channels
        assert len(region.zind) == noise_image.n_channels
        assert len(region.skip) == noise_image.n_channels
        assert public.matrix_ids() == [roi.matrix_id]

    def test_original_left_untouched(self, noise_image):
        before = noise_image.copy()
        roi = _roi("puppies-c")
        _protect(noise_image, [roi])
        assert noise_image.coefficients_equal(before)
