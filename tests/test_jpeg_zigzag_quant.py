"""Zigzag ordering and quantization tests."""

import numpy as np
import pytest

from repro.jpeg import quantization as quantlib
from repro.jpeg.zigzag import (
    INVERSE_ZIGZAG,
    ZIGZAG,
    block_to_zigzag,
    zigzag_to_block,
    zigzag_frequency_index,
)
from repro.util.errors import CodecError


class TestZigzag:
    def test_zigzag_is_permutation(self):
        assert sorted(ZIGZAG.tolist()) == list(range(64))

    def test_known_prefix(self):
        # The canonical JPEG zigzag starts (0,0),(0,1),(1,0),(2,0),(1,1)...
        expected = [0, 1, 8, 16, 9, 2, 3, 10, 17, 24]
        assert ZIGZAG[:10].tolist() == expected

    def test_last_entry_is_bottom_right(self):
        assert ZIGZAG[63] == 63

    def test_roundtrip(self, rng):
        blocks = rng.integers(-100, 100, (6, 8, 8))
        assert np.array_equal(
            zigzag_to_block(block_to_zigzag(blocks)), blocks
        )

    def test_inverse_is_argsort(self):
        assert np.array_equal(ZIGZAG[INVERSE_ZIGZAG], np.arange(64))

    def test_frequency_index_dc_is_zero(self):
        assert zigzag_frequency_index()[0, 0] == 0
        assert zigzag_frequency_index()[7, 7] == 63


class TestQuantization:
    def test_standard_tables_shapes_and_known_values(self):
        lum = quantlib.standard_luminance_table()
        chrom = quantlib.standard_chrominance_table()
        assert lum.shape == chrom.shape == (8, 8)
        assert lum[0, 0] == 16 and lum[7, 7] == 99
        assert chrom[0, 0] == 17 and chrom[7, 7] == 99

    def test_quality_50_is_identity(self):
        base = quantlib.standard_luminance_table()
        assert np.array_equal(quantlib.quality_scaled_table(base, 50), base)

    def test_quality_100_is_minimal(self):
        table = quantlib.quality_scaled_table(
            quantlib.standard_luminance_table(), 100
        )
        assert table.max() <= 2
        assert table.min() >= 1

    def test_low_quality_is_coarser(self):
        base = quantlib.standard_luminance_table()
        coarse = quantlib.quality_scaled_table(base, 10)
        fine = quantlib.quality_scaled_table(base, 90)
        assert (coarse >= fine).all()
        assert coarse.sum() > fine.sum()

    def test_quality_bounds_enforced(self):
        base = quantlib.standard_luminance_table()
        with pytest.raises(CodecError):
            quantlib.quality_scaled_table(base, 0)
        with pytest.raises(CodecError):
            quantlib.quality_scaled_table(base, 101)

    def test_quantize_dequantize_bounded_error(self, rng):
        table = quantlib.standard_luminance_table()
        raw = rng.uniform(-500, 500, (4, 8, 8))
        q = quantlib.quantize(raw, table)
        back = quantlib.dequantize(q, table)
        assert (np.abs(back - raw) <= table / 2 + 1e-9).all()

    def test_requantize_matches_two_step(self, rng):
        old = quantlib.quality_scaled_table(
            quantlib.standard_luminance_table(), 80
        )
        new = quantlib.quality_scaled_table(
            quantlib.standard_luminance_table(), 40
        )
        q = rng.integers(-200, 200, (3, 8, 8)).astype(np.int32)
        re = quantlib.requantize(q, old, new)
        expected = quantlib.quantize(quantlib.dequantize(q, old), new)
        assert np.array_equal(re, expected)
