"""Public-data wire-format tests (the RPPD container)."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.core.reconstruct import reconstruct_regions
from repro.core.serialization import (
    deserialize_public_data,
    serialize_public_data,
)
from repro.util.errors import ReproError
from repro.util.rect import Rect


def _protect(image, scheme, settings=None):
    roi = RegionOfInterest(
        "r0",
        Rect(8, 16, 24, 32),
        settings or PrivacySettings.for_level(PrivacyLevel.MEDIUM),
        scheme=scheme,
    )
    key = generate_private_key(roi.matrix_id, "ser-owner")
    perturbed, public = perturb_regions(image, [roi], {roi.matrix_id: key})
    return perturbed, public, {roi.matrix_id: key}


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fields_survive(self, noise_image, scheme):
        _perturbed, public, _keys = _protect(noise_image, scheme)
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert rebuilt.height == public.height
        assert rebuilt.width == public.width
        assert rebuilt.blocks_shape == public.blocks_shape
        assert rebuilt.colorspace == public.colorspace
        for a, b in zip(rebuilt.quant_tables, public.quant_tables):
            assert np.array_equal(a, b)
        assert len(rebuilt.regions) == len(public.regions)
        orig = public.regions[0]
        back = rebuilt.regions[0]
        assert back.region_id == orig.region_id
        assert back.rect == orig.rect
        assert back.scheme == orig.scheme
        assert back.settings == orig.settings
        assert back.matrix_id == orig.matrix_id
        for a, b in zip(back.wind, orig.wind):
            assert np.array_equal(a, b)
        for a, b in zip(back.zind, orig.zind):
            assert np.array_equal(a, b)
        for a, b in zip(back.skip, orig.skip):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_reconstruction_from_deserialized_params(
        self, noise_image, scheme
    ):
        perturbed, public, keys = _protect(noise_image, scheme)
        rebuilt = deserialize_public_data(serialize_public_data(public))
        recovered = reconstruct_regions(perturbed, rebuilt, keys)
        assert recovered.coefficients_equal(noise_image)

    def test_transform_params_survive(self, noise_image):
        from repro.transforms import Scale

        _perturbed, public, _keys = _protect(noise_image, "puppies-c")
        public.transform_params = Scale(10, 20).to_params()
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert rebuilt.transform_params == public.transform_params

    def test_high_privacy_settings_survive(self, noise_image):
        _p, public, _k = _protect(
            noise_image,
            "puppies-c",
            PrivacySettings.for_level(PrivacyLevel.HIGH),
        )
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert rebuilt.regions[0].settings.min_range == 2048
        assert rebuilt.regions[0].settings.n_perturbed == 64

    def test_shadow_reconstruction_from_deserialized(self, noise_image):
        from repro.core.shadow import reconstruct_transformed
        from repro.transforms import Rotate90

        perturbed, public, keys = _protect(noise_image, "puppies-z")
        rebuilt = deserialize_public_data(serialize_public_data(public))
        transform = Rotate90(1)
        transformed = transform.apply(perturbed.to_sample_planes())
        recovered = reconstruct_transformed(
            transformed, transform, rebuilt, keys
        )
        truth = transform.apply(noise_image.to_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-7)

    def test_bad_magic_rejected(self):
        with pytest.raises(ReproError):
            deserialize_public_data(b"NOPE" + b"\x00" * 32)

    def test_multiple_regions(self, noise_image):
        rois = [
            RegionOfInterest("a", Rect(0, 0, 16, 16), scheme="puppies-c"),
            RegionOfInterest("b", Rect(32, 32, 16, 24), scheme="puppies-z"),
        ]
        keys = {
            roi.matrix_id: generate_private_key(roi.matrix_id, "o")
            for roi in rois
        }
        _perturbed, public = perturb_regions(noise_image, rois, keys)
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert [r.region_id for r in rebuilt.regions] == ["a", "b"]
        assert rebuilt.regions[1].skip  # -Z keeps its skip masks
        assert not rebuilt.regions[0].skip
