"""Public-data wire-format tests (the RPPD container)."""

import numpy as np
import pytest

from repro.core.keys import generate_private_key
from repro.core.perturb import SCHEMES, perturb_regions
from repro.core.policy import PrivacyLevel, PrivacySettings
from repro.core.roi import RegionOfInterest
from repro.core.reconstruct import reconstruct_regions
from repro.core.serialization import (
    deserialize_public_data,
    serialize_public_data,
)
from repro.util.errors import ReproError
from repro.util.rect import Rect


def _protect(image, scheme, settings=None):
    roi = RegionOfInterest(
        "r0",
        Rect(8, 16, 24, 32),
        settings or PrivacySettings.for_level(PrivacyLevel.MEDIUM),
        scheme=scheme,
    )
    key = generate_private_key(roi.matrix_id, "ser-owner")
    perturbed, public = perturb_regions(image, [roi], {roi.matrix_id: key})
    return perturbed, public, {roi.matrix_id: key}


class TestRoundTrip:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_fields_survive(self, noise_image, scheme):
        _perturbed, public, _keys = _protect(noise_image, scheme)
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert rebuilt.height == public.height
        assert rebuilt.width == public.width
        assert rebuilt.blocks_shape == public.blocks_shape
        assert rebuilt.colorspace == public.colorspace
        for a, b in zip(rebuilt.quant_tables, public.quant_tables):
            assert np.array_equal(a, b)
        assert len(rebuilt.regions) == len(public.regions)
        orig = public.regions[0]
        back = rebuilt.regions[0]
        assert back.region_id == orig.region_id
        assert back.rect == orig.rect
        assert back.scheme == orig.scheme
        assert back.settings == orig.settings
        assert back.matrix_id == orig.matrix_id
        for a, b in zip(back.wind, orig.wind):
            assert np.array_equal(a, b)
        for a, b in zip(back.zind, orig.zind):
            assert np.array_equal(a, b)
        for a, b in zip(back.skip, orig.skip):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_reconstruction_from_deserialized_params(
        self, noise_image, scheme
    ):
        perturbed, public, keys = _protect(noise_image, scheme)
        rebuilt = deserialize_public_data(serialize_public_data(public))
        recovered = reconstruct_regions(perturbed, rebuilt, keys)
        assert recovered.coefficients_equal(noise_image)

    def test_transform_params_survive(self, noise_image):
        from repro.transforms import Scale

        _perturbed, public, _keys = _protect(noise_image, "puppies-c")
        public.transform_params = Scale(10, 20).to_params()
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert rebuilt.transform_params == public.transform_params

    def test_high_privacy_settings_survive(self, noise_image):
        _p, public, _k = _protect(
            noise_image,
            "puppies-c",
            PrivacySettings.for_level(PrivacyLevel.HIGH),
        )
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert rebuilt.regions[0].settings.min_range == 2048
        assert rebuilt.regions[0].settings.n_perturbed == 64

    def test_shadow_reconstruction_from_deserialized(self, noise_image):
        from repro.core.shadow import reconstruct_transformed
        from repro.transforms import Rotate90

        perturbed, public, keys = _protect(noise_image, "puppies-z")
        rebuilt = deserialize_public_data(serialize_public_data(public))
        transform = Rotate90(1)
        transformed = transform.apply(perturbed.to_sample_planes())
        recovered = reconstruct_transformed(
            transformed, transform, rebuilt, keys
        )
        truth = transform.apply(noise_image.to_sample_planes())
        for r, t in zip(recovered, truth):
            assert np.allclose(r, t, atol=1e-7)

    def test_bad_magic_rejected(self):
        with pytest.raises(ReproError):
            deserialize_public_data(b"NOPE" + b"\x00" * 32)

    def test_trailing_garbage_rejected(self, noise_image):
        from repro.util.errors import IntegrityError

        _p, public, _k = _protect(noise_image, "puppies-c")
        blob = serialize_public_data(public)
        with pytest.raises(IntegrityError):
            deserialize_public_data(blob + b"\x00")

    def test_multiple_regions(self, noise_image):
        rois = [
            RegionOfInterest("a", Rect(0, 0, 16, 16), scheme="puppies-c"),
            RegionOfInterest("b", Rect(32, 32, 16, 24), scheme="puppies-z"),
        ]
        keys = {
            roi.matrix_id: generate_private_key(roi.matrix_id, "o")
            for roi in rois
        }
        _perturbed, public = perturb_regions(noise_image, rois, keys)
        rebuilt = deserialize_public_data(serialize_public_data(public))
        assert [r.region_id for r in rebuilt.regions] == ["a", "b"]
        assert rebuilt.regions[1].skip  # -Z keeps its skip masks
        assert not rebuilt.regions[0].skip


class TestIntegrityFuzz:
    """Seeded fuzzing of the CRC-framed container (both wire formats).

    Every corrupted blob must be *rejected with* :class:`IntegrityError`
    — never an uncaught ``struct.error``/``zlib.error``, and never a
    silently-parsed wrong record. The trailing CRC32 makes the latter a
    ~2^-32 event, which the fixed seeds below never hit.
    """

    @pytest.fixture(scope="class")
    def blobs(self, noise_image):
        import zlib

        from repro.core.serialization import MAGIC, MAGIC_COMPRESSED

        _p, public, _k = _protect(noise_image, "puppies-z")
        chosen = serialize_public_data(public)
        # Reconstruct the sibling format so both RPPD and RPPZ get fuzzed
        # regardless of which one serialize_public_data preferred.
        if chosen[:4] == MAGIC_COMPRESSED:
            raw = MAGIC + zlib.decompress(chosen[4:])
            return {"RPPZ": chosen, "RPPD": raw}
        body = chosen[4:]
        return {
            "RPPD": chosen,
            "RPPZ": MAGIC_COMPRESSED + zlib.compress(body, 6),
        }

    @staticmethod
    def _expect_rejection(blob):
        from repro.util.errors import IntegrityError

        with pytest.raises(IntegrityError):
            deserialize_public_data(blob)

    @pytest.mark.parametrize("fmt", ["RPPD", "RPPZ"])
    def test_both_formats_parse_clean(self, blobs, fmt):
        rebuilt = deserialize_public_data(blobs[fmt])
        assert rebuilt.regions[0].region_id == "r0"

    @pytest.mark.parametrize("fmt", ["RPPD", "RPPZ"])
    def test_random_truncations_rejected(self, blobs, fmt):
        blob = blobs[fmt]
        rng = np.random.default_rng(1234)
        cuts = rng.integers(0, len(blob), size=40)
        for cut in [0, 1, 3, 4, 5, len(blob) - 1] + cuts.tolist():
            self._expect_rejection(blob[: int(cut)])

    @pytest.mark.parametrize("fmt", ["RPPD", "RPPZ"])
    def test_single_byte_mutations_rejected(self, blobs, fmt):
        blob = blobs[fmt]
        rng = np.random.default_rng(5678)
        positions = rng.integers(4, len(blob), size=60)
        deltas = rng.integers(1, 256, size=60)
        for pos, delta in zip(positions.tolist(), deltas.tolist()):
            mutated = bytearray(blob)
            mutated[pos] = (mutated[pos] + delta) % 256
            self._expect_rejection(bytes(mutated))

    @pytest.mark.parametrize("fmt", ["RPPD", "RPPZ"])
    def test_duplicated_tail_rejected(self, blobs, fmt):
        blob = blobs[fmt]
        self._expect_rejection(blob + blob[-32:])

    def test_empty_and_magic_only(self):
        self._expect_rejection(b"")
        self._expect_rejection(b"RPPD")
        self._expect_rejection(b"RPPZ")
        self._expect_rejection(b"RPPZ" + b"not zlib at all")
