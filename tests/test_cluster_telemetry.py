"""Trace propagation and telemetry over real RPCF sockets.

The tier-1 half runs a :class:`ShardWorker` on a thread (real sockets,
no processes); the ``cluster``-marked half spawns the real fleet and
checks the headline acceptance: one loadgen run yields a single merged
trace where ``cluster.get`` spans have worker-process children.
"""

from __future__ import annotations

import contextlib
import socket
import threading

import pytest

from repro import obs
from repro.cluster.client import ClusterClient
from repro.cluster.wire import (
    MSG_OK,
    MSG_PING,
    read_frame,
    unpack_ping_response,
    write_frame,
)
from repro.cluster.worker import ShardWorker
from repro.obs.core import Registry
from repro.obs.distributed import TelemetryCollector


@contextlib.contextmanager
def worker_in_thread(telemetry: bool = True):
    worker = ShardWorker("wt0", telemetry=telemetry)
    thread = threading.Thread(target=worker.serve, daemon=True)
    thread.start()
    try:
        yield worker
    finally:
        worker.close()
        thread.join(2.0)


def _client(worker: ShardWorker, **kwargs) -> ClusterClient:
    return ClusterClient(
        {worker.worker_id: ("127.0.0.1", worker.port)},
        replication=1,
        timeout=5.0,
        **kwargs,
    )


@pytest.fixture
def traced_registry():
    """A fresh enabled default registry, restored afterwards."""
    previous = obs.set_registry(Registry(enabled=True))
    try:
        yield obs.get_registry()
    finally:
        obs.set_registry(previous)


class TestTracePropagation:
    def test_worker_span_parents_onto_client_span(self, traced_registry):
        with worker_in_thread() as worker:
            with _client(worker, telemetry=True) as client:
                client.put("img-a", b"payload" * 10, b"{}")
                client.get("img-a")
                delta = client.fetch_telemetry("wt0")
                client_id = client.client_id

        collector = TelemetryCollector(traced_registry)
        collector.bind_native_client(client_id)
        assert collector.merge_delta(delta) >= 2  # put + get at least

        spans = {span.span_id: span for span in traced_registry.spans()}
        worker_gets = [
            span for span in spans.values() if span.name == "worker.get"
        ]
        assert worker_gets, "worker recorded no get spans"
        for span in worker_gets:
            assert span.parent_id is not None
            assert spans[span.parent_id].name == "cluster.get"
            assert span.trace_id == client_id
        assert collector.orphaned_spans == 0

    def test_untraced_client_yields_root_worker_spans(self):
        """No trace block on the wire → spans still record, as roots."""
        with worker_in_thread() as worker:
            with _client(worker) as client:  # telemetry=False default
                client.put("img-b", b"payload" * 10, b"{}")
                client.get("img-b")
                delta = client.fetch_telemetry("wt0")
        get_records = [
            record for record in delta.spans
            if record["name"] == "worker.get"
        ]
        assert get_records
        for record in get_records:
            assert "remote_parent" not in record
            assert record.get("parent") is None

    def test_worker_error_is_tagged_on_span(self):
        with worker_in_thread() as worker:
            with _client(worker, telemetry=True) as client:
                with pytest.raises(KeyError):
                    client.get("no-such-id")
                delta = client.fetch_telemetry("wt0")
        (record,) = [
            r for r in delta.spans if r["name"] == "worker.get"
        ]
        assert record["tags"].get("error") == "request_failed"

    def test_drain_is_destructive(self):
        with worker_in_thread() as worker:
            with _client(worker) as client:
                client.put("img-c", b"payload" * 10, b"{}")
                first = client.fetch_telemetry("wt0")
                second = client.fetch_telemetry("wt0")
        assert first.spans
        assert second.spans == []
        assert second.spans_recorded == first.spans_recorded


class TestCompat:
    def test_v1_ping_still_served(self):
        """An old client's empty-payload ping gets the short response."""
        with worker_in_thread() as worker:
            conn = socket.create_connection(
                ("127.0.0.1", worker.port), timeout=5.0
            )
            try:
                write_frame(conn, MSG_PING, b"")
                ftype, payload = read_frame(conn)
            finally:
                conn.close()
        assert ftype == MSG_OK
        stats = unpack_ping_response(payload)
        assert stats["worker_id"] == "wt0"
        assert "telemetry" not in stats  # v1 shape exactly

    def test_telemetry_off_worker_answers_everything(self):
        """Tracing clients interoperate with a non-recording worker."""
        with worker_in_thread(telemetry=False) as worker:
            with _client(worker, telemetry=True) as client:
                client.put("img-d", b"payload" * 10, b"{}")
                client.get("img-d")
                stats = client.ping("wt0")
                delta = client.fetch_telemetry("wt0")
        assert stats["telemetry"] is False
        assert stats["spans_recorded"] == 0
        assert delta.empty

    def test_health_surfaces_worker_telemetry_stats(self):
        with worker_in_thread() as worker:
            with _client(worker) as client:
                client.put("img-e", b"payload" * 10, b"{}")
                health = client.health()
        stats = health["wt0"]
        assert stats is not None
        assert stats["telemetry"] is True
        assert stats["spans_recorded"] >= 1
        assert stats["spans_dropped"] == 0
        assert stats["items"] == 1


@pytest.mark.cluster
class TestFleetTrace:
    def test_loadgen_merges_one_fleet_trace(self, traced_registry):
        from repro.cluster import (
            ClusterSupervisor,
            build_cluster_corpus,
            run_cluster_loadgen,
        )

        with ClusterSupervisor(n_workers=2, telemetry=True) as sup:
            with sup.client() as client:
                image_ids = build_cluster_corpus(client, 3)
            report = run_cluster_loadgen(
                sup.endpoints(),
                image_ids,
                processes=2,
                requests=24,
                scrub_ratio=0.25,
                telemetry=True,
            )

        assert report.failed_reads == 0
        assert report.telemetry_spans > 0
        assert set(report.worker_stats) == {"w0", "w1"}
        for stats in report.worker_stats.values():
            assert stats is not None
            assert stats["telemetry"] is True

        # The acceptance bar: at least one cluster.get span has a
        # worker-process child whose parent id resolved across the wire.
        spans = {span.span_id: span for span in traced_registry.spans()}
        linked = [
            span
            for span in spans.values()
            if span.name.startswith("worker.")
            and span.parent_id in spans
            and spans[span.parent_id].name
            in ("cluster.get", "cluster.put", "cluster.scrub")
        ]
        assert linked, "no worker span parented onto a client span"
        get_parents = {
            spans[span.parent_id].name for span in linked
        }
        assert "cluster.get" in get_parents

    def test_chrome_export_draws_every_process(
        self, traced_registry, tmp_path
    ):
        import json

        from repro.cluster import (
            ClusterSupervisor,
            build_cluster_corpus,
            run_cluster_loadgen,
        )
        from repro.obs.export import export_chrome_trace

        with ClusterSupervisor(n_workers=2, telemetry=True) as sup:
            with sup.client() as client:
                image_ids = build_cluster_corpus(client, 2)
            run_cluster_loadgen(
                sup.endpoints(), image_ids,
                processes=2, requests=12, telemetry=True,
            )
        target = tmp_path / "fleet.json"
        export_chrome_trace(traced_registry, str(target))
        doc = json.loads(target.read_text())
        names = {
            event["args"]["name"]
            for event in doc["traceEvents"]
            if event.get("ph") == "M"
        }
        # main + 2 loadgen children + 2 workers, one flame graph.
        assert {"main", "loadgen:0", "loadgen:1",
                "worker:w0", "worker:w1"} <= names

    def test_slo_gate_passes_clean_and_fails_under_faults(
        self, traced_registry
    ):
        from repro.cluster import (
            ClusterFaultInjector,
            ClusterSupervisor,
            build_cluster_corpus,
            run_cluster_loadgen,
        )
        from repro.obs import SloPolicy, evaluate_metrics

        faults = {
            "w0": ClusterFaultInjector(delay_every=2, delay_s=0.05)
        }
        with ClusterSupervisor(
            n_workers=2, faults=faults, telemetry=True
        ) as sup:
            with sup.client() as client:
                image_ids = build_cluster_corpus(client, 2)
            report = run_cluster_loadgen(
                sup.endpoints(), image_ids,
                processes=2, requests=24, scrub_ratio=0.0,
                hedge_delay=10.0,  # no hedging: delays land in p99
                telemetry=True,
            )

        def gate(policy):
            return evaluate_metrics(
                policy,
                p99_ms=report.p99_ms,
                requests=report.requests,
                errors=report.errors,
                under_replicated=report.stats.get("under_replicated", 0),
                dropped_spans=0,
            )

        generous = gate(SloPolicy(max_p99_ms=60_000.0,
                                  max_error_rate=0.5))
        assert generous.ok
        # The injected 50 ms delay on half of w0's responses must blow
        # a 10 ms p99 budget.
        strict = gate(SloPolicy(max_p99_ms=10.0))
        assert not strict.ok
